/**
 * @file
 * WorkerPool unit tests: lifecycle, fan-out coverage, ordered reduce,
 * exception propagation, and reuse after failure. The pool's contract
 * is that scheduling is never observable when callers confine writes
 * to per-index state — these tests hammer that with worker counts
 * both below and far above the host's core count.
 */

#include "base/pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace osh
{
namespace
{

TEST(WorkerPool, LaneAccounting)
{
    WorkerPool serial(1);
    EXPECT_EQ(serial.workers(), 1u);

    WorkerPool four(4);
    EXPECT_EQ(four.workers(), 4u);

    // 0 = hardware concurrency, clamped to at least one lane.
    WorkerPool autod(0);
    EXPECT_GE(autod.workers(), 1u);
    EXPECT_EQ(autod.workers(), WorkerPool::hardwareWorkers());
}

TEST(WorkerPool, EveryIndexRunsExactlyOnce)
{
    constexpr std::size_t n = 1000;
    for (unsigned workers : {1u, 2u, 8u}) {
        WorkerPool pool(workers);
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&](std::size_t i) { hits[i]++; });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i
                                         << " workers " << workers;
    }
}

TEST(WorkerPool, EmptyAndSingleItemJobs)
{
    WorkerPool pool(4);
    pool.parallelFor(0, [](std::size_t) { FAIL() << "ran on n=0"; });
    int ran = 0;
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++ran;
    });
    EXPECT_EQ(ran, 1);
}

TEST(WorkerPool, MapOrderedReturnsSubmissionOrder)
{
    WorkerPool pool(8);
    auto out = mapOrdered<std::uint64_t>(
        pool, 512, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 512u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(WorkerPool, ResultsIdenticalAcrossWorkerCounts)
{
    // The deterministic fan-out/ordered-reduce property the cloak
    // engine builds on: per-index outputs never depend on scheduling.
    auto run = [](unsigned workers) {
        WorkerPool pool(workers);
        return mapOrdered<std::uint64_t>(pool, 257, [](std::size_t i) {
            std::uint64_t h = i * 0x9e3779b97f4a7c15ull;
            h ^= h >> 29;
            return h;
        });
    };
    auto ref = run(1);
    EXPECT_EQ(run(2), ref);
    EXPECT_EQ(run(16), ref);
}

TEST(WorkerPool, LowestIndexExceptionWins)
{
    WorkerPool pool(8);
    std::atomic<int> executed{0};
    try {
        pool.parallelFor(100, [&](std::size_t i) {
            executed++;
            if (i == 7 || i == 63 || i == 99)
                throw std::runtime_error("fail@" + std::to_string(i));
        });
        FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "fail@7");
    }
    // Every index still ran (failures don't cancel the batch).
    EXPECT_EQ(executed.load(), 100);
}

TEST(WorkerPool, SerialLaneThrowsInOrder)
{
    WorkerPool pool(1);
    int executed = 0;
    try {
        pool.parallelFor(10, [&](std::size_t i) {
            executed++;
            if (i == 3)
                throw std::logic_error("stop");
        });
        FAIL() << "expected a throw";
    } catch (const std::logic_error&) {
    }
    // Inline lane stops at the first failure, like a plain loop.
    EXPECT_EQ(executed, 4);
}

TEST(WorkerPool, UsableAfterException)
{
    WorkerPool pool(4);
    EXPECT_THROW(pool.parallelFor(
                     8, [](std::size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
}

TEST(WorkerPool, ManySmallJobsReuseThreads)
{
    WorkerPool pool(4);
    std::uint64_t total = 0;
    for (int round = 0; round < 200; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(16, [&](std::size_t i) { sum += i + 1; });
        total += sum.load();
    }
    EXPECT_EQ(total, 200u * 136u);
}

TEST(WorkerPool, ResizeJoinsAndRespawns)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.workers(), 1u);
    pool.resize(6);
    EXPECT_EQ(pool.workers(), 6u);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(64, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 2016u);
    pool.resize(1);
    EXPECT_EQ(pool.workers(), 1u);
    sum = 0;
    pool.parallelFor(64, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 2016u);
}

TEST(WorkerPool, DestructionWithIdleWorkers)
{
    // Construct-and-destroy with threads that never saw a job.
    for (int i = 0; i < 20; ++i) {
        WorkerPool pool(8);
        (void)pool;
    }
}

} // namespace
} // namespace osh
