/**
 * @file
 * Cloak-engine unit tests against a minimal fake guest OS.
 *
 * These drive resolvePage() directly through Vcpu memory accesses with
 * hand-built contexts, pinning down the multi-shadowing semantics:
 * plaintext in the owner's view, ciphertext everywhere else, integrity
 * verification on every uncloak, and the clean/dirty state machine.
 */

#include "cloak/engine.hh"
#include "sim/machine.hh"
#include "vmm/vcpu.hh"
#include "vmm/vmm.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

namespace osh::cloak
{
namespace
{

/** Guest OS stub: fixed page tables, no fault handling. */
class FakeOs : public vmm::GuestOsHooks
{
  public:
    void
    map(Asid asid, GuestVA va, Gpa gpa, bool writable = true)
    {
        ptes_[{asid, pageBase(va)}] =
            vmm::GuestPte{pageBase(gpa), true, writable, true, false};
    }

    void
    unmap(Asid asid, GuestVA va)
    {
        ptes_.erase({asid, pageBase(va)});
    }

    vmm::GuestPte
    translateGuest(Asid asid, GuestVA va) override
    {
        auto it = ptes_.find({asid, pageBase(va)});
        return it == ptes_.end() ? vmm::GuestPte{} : it->second;
    }

    void
    handleGuestPageFault(vmm::Vcpu&, GuestVA va, vmm::AccessType) override
    {
        throw vmm::ProcessKilled{
            0, formatString("unexpected guest fault at 0x%llx",
                            static_cast<unsigned long long>(va))};
    }

  private:
    std::map<std::pair<Asid, GuestVA>, vmm::GuestPte> ptes_;
};

/** Harness: machine + VMM + engine + fake OS + one domain. */
class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : machine_(sim::MachineConfig{256, 7, {}}),
          vmm_(machine_, 256),
          engine_(vmm_, 99, 64)
    {
        vmm_.setGuestOs(&os_);
        domain_ = engine_.createDomain(appAsid, 5,
                                       programIdentity("victim"));
        os_.map(appAsid, appVa, gpa);
        // The kernel reaches the same frame through its direct map.
        os_.map(kernelAsid, kernelVaOf(gpa), gpa);
        resource_ = engine_.registerRegion(domain_, appVa, 4);
    }

    static GuestVA kernelVaOf(Gpa gpa) { return 0x800000000000ull + gpa; }

    vmm::Vcpu
    appCpu()
    {
        return vmm::Vcpu(vmm_, vmm::Context{appAsid, domain_, false});
    }

    vmm::Vcpu
    kernelCpu()
    {
        return vmm::Vcpu(vmm_,
                         vmm::Context{kernelAsid, systemDomain, true});
    }

    /** Raw machine bytes of the frame backing a GPA. */
    std::vector<std::uint8_t>
    rawFrame(Gpa g)
    {
        auto span = machine_.memory().framePlain(vmm_.pmap().translate(g));
        return {span.begin(), span.end()};
    }

    static constexpr Asid appAsid = 5;
    static constexpr Asid kernelAsid = 0;
    static constexpr GuestVA appVa = 0x10000;
    static constexpr Gpa gpa = 0x3000;

    sim::Machine machine_;
    vmm::Vmm vmm_;
    CloakEngine engine_;
    FakeOs os_;
    DomainId domain_ = 0;
    ResourceId resource_ = 0;
};

TEST_F(EngineTest, FirstTouchIsZeroFilled)
{
    // Leave junk in the frame (as a malicious kernel might).
    machine_.memory().write64(vmm_.pmap().translate(gpa), 0x1111);
    auto app = appCpu();
    EXPECT_EQ(app.load64(appVa), 0u);
    app.store64(appVa, 0xfeed);
    EXPECT_EQ(app.load64(appVa), 0xfeedu);
}

TEST_F(EngineTest, KernelSeesCiphertextAppSeesPlaintext)
{
    auto app = appCpu();
    auto kernel = kernelCpu();
    app.store64(appVa, 0x5ec7e7'5ec7e7ull);

    // Kernel view: ciphertext, not the stored value.
    std::uint64_t kview = kernel.load64(kernelVaOf(gpa));
    EXPECT_NE(kview, 0x5ec7e7'5ec7e7ull);
    EXPECT_EQ(engine_.stats().value("page_encrypts"), 1u);

    // App view: decrypt + verify restores the plaintext.
    EXPECT_EQ(app.load64(appVa), 0x5ec7e7'5ec7e7ull);
    EXPECT_EQ(engine_.stats().value("page_decrypts"), 1u);
}

TEST_F(EngineTest, WholePageNeverLeaksPlaintextToKernel)
{
    auto app = appCpu();
    auto kernel = kernelCpu();
    // Fill the page with a recognizable pattern.
    for (GuestVA off = 0; off < pageSize; off += 8)
        app.store64(appVa + off, 0xabad1dea'00000000ull | off);

    std::vector<std::uint8_t> kbytes(pageSize);
    kernel.readBytes(kernelVaOf(gpa), kbytes);
    int matches = 0;
    for (GuestVA off = 0; off < pageSize; off += 8) {
        std::uint64_t v;
        std::memcpy(&v, kbytes.data() + off, 8);
        matches += (v == (0xabad1dea'00000000ull | off)) ? 1 : 0;
    }
    EXPECT_EQ(matches, 0);
}

TEST_F(EngineTest, KernelTamperingDetectedOnNextAppAccess)
{
    auto app = appCpu();
    auto kernel = kernelCpu();
    app.store64(appVa, 42);
    kernel.load64(kernelVaOf(gpa)); // Forces encryption.
    kernel.store64(kernelVaOf(gpa) + 256, 0x666); // Tamper ciphertext.
    EXPECT_THROW(app.load64(appVa), vmm::ProcessKilled);
    EXPECT_EQ(engine_.stats().value("violations"), 1u);
    ASSERT_FALSE(engine_.auditLog().empty());
    EXPECT_EQ(engine_.auditLog().front().domain, domain_);
}

TEST_F(EngineTest, ReplayOfStaleCiphertextDetected)
{
    auto app = appCpu();
    auto kernel = kernelCpu();
    app.store64(appVa, 1);
    kernel.load64(kernelVaOf(gpa));   // Encrypt v1.
    auto v1 = rawFrame(gpa);

    app.store64(appVa, 2);            // Decrypt, modify (dirty).
    kernel.load64(kernelVaOf(gpa));   // Encrypt v2 (fresh IV/version).

    // Malicious kernel restores the stale v1 image.
    machine_.memory().write(vmm_.pmap().translate(gpa), v1);
    EXPECT_THROW(app.load64(appVa), vmm::ProcessKilled);
}

TEST_F(EngineTest, LegitimatePageRelocationVerifies)
{
    // Model swap-out/swap-in to a different frame: the kernel moves the
    // exact ciphertext bytes to a new GPA and remaps the app's VA.
    auto app = appCpu();
    auto kernel = kernelCpu();
    app.store64(appVa, 0x1234);
    kernel.load64(kernelVaOf(gpa)); // Encrypt.
    auto cipher = rawFrame(gpa);

    constexpr Gpa gpa2 = 0x9000;
    machine_.memory().write(vmm_.pmap().translate(gpa2), cipher);
    os_.map(appAsid, appVa, gpa2);
    os_.map(kernelAsid, kernelVaOf(gpa2), gpa2);
    vmm_.invalidateVa(appAsid, appVa);

    EXPECT_EQ(app.load64(appVa), 0x1234u);
}

TEST_F(EngineTest, RelocationWithWrongBytesDetected)
{
    auto app = appCpu();
    auto kernel = kernelCpu();
    app.store64(appVa, 0x1234);
    kernel.load64(kernelVaOf(gpa)); // Encrypt.

    // Kernel remaps the VA to a frame with junk.
    constexpr Gpa gpa2 = 0xa000;
    machine_.memory().write64(vmm_.pmap().translate(gpa2), 0x9999);
    os_.map(appAsid, appVa, gpa2);
    vmm_.invalidateVa(appAsid, appVa);

    EXPECT_THROW(app.load64(appVa), vmm::ProcessKilled);
}

TEST_F(EngineTest, OtherDomainSeesCiphertext)
{
    auto app = appCpu();
    app.store64(appVa, 0x7007);

    // A second cloaked process; the malicious kernel maps the victim's
    // frame into its address space.
    constexpr Asid otherAsid = 8;
    DomainId other = engine_.createDomain(otherAsid, 8,
                                          programIdentity("attacker"));
    constexpr GuestVA otherVa = 0x40000;
    os_.map(otherAsid, otherVa, gpa);

    vmm::Vcpu attacker(vmm_, vmm::Context{otherAsid, other, false});
    std::uint64_t seen = attacker.load64(otherVa);
    EXPECT_NE(seen, 0x7007u);

    // And the victim still round-trips correctly afterwards.
    EXPECT_EQ(app.load64(appVa), 0x7007u);
}

TEST_F(EngineTest, CleanPagesSkipRehash)
{
    auto app = appCpu();
    auto kernel = kernelCpu();
    app.store64(appVa, 5);
    kernel.load64(kernelVaOf(gpa)); // dirty -> encrypt (v1)
    EXPECT_EQ(engine_.stats().value("page_encrypts"), 1u);

    app.load64(appVa);              // decrypt -> CLEAN (read-only)
    kernel.load64(kernelVaOf(gpa)); // clean -> cheap re-encrypt
    EXPECT_EQ(engine_.stats().value("page_encrypts"), 1u);
    EXPECT_EQ(engine_.stats().value("clean_reencrypts"), 1u);

    app.store64(appVa, 6);          // decrypt, write -> DIRTY
    kernel.load64(kernelVaOf(gpa)); // dirty -> full encrypt (v2)
    EXPECT_EQ(engine_.stats().value("page_encrypts"), 2u);
    EXPECT_EQ(app.load64(appVa), 6u);
}

TEST_F(EngineTest, CleanOptimizationDisabledAlwaysRehashes)
{
    engine_.setCleanOptimization(false);
    auto app = appCpu();
    auto kernel = kernelCpu();
    app.store64(appVa, 5);
    kernel.load64(kernelVaOf(gpa));
    app.load64(appVa);
    kernel.load64(kernelVaOf(gpa));
    EXPECT_EQ(engine_.stats().value("clean_reencrypts"), 0u);
    EXPECT_EQ(engine_.stats().value("page_encrypts"), 2u);
    EXPECT_EQ(app.load64(appVa), 5u);
}

TEST_F(EngineTest, CleanToDirtyUpgradeWithoutCrypto)
{
    auto app = appCpu();
    auto kernel = kernelCpu();
    app.store64(appVa, 5);
    kernel.load64(kernelVaOf(gpa));
    app.load64(appVa); // CLEAN
    std::uint64_t decrypts = engine_.stats().value("page_decrypts");
    app.store64(appVa, 9); // write fault: CLEAN -> DIRTY, no crypto
    EXPECT_EQ(engine_.stats().value("page_decrypts"), decrypts);
    EXPECT_EQ(engine_.stats().value("clean_to_dirty"), 1u);
    EXPECT_EQ(app.load64(appVa), 9u);
}

TEST_F(EngineTest, UnregisterScrubsPlaintext)
{
    auto app = appCpu();
    app.store64(appVa, 0x1337);
    auto plain = rawFrame(gpa);
    EXPECT_EQ(plain[0], 0x37);

    engine_.unregisterRegion(domain_, appVa);
    auto after = rawFrame(gpa);
    EXPECT_NE(after, plain); // Encrypted in place.
}

TEST_F(EngineTest, TeardownScrubsResidentPlaintext)
{
    auto app = appCpu();
    app.store64(appVa, 0x4242);
    engine_.teardownDomain(domain_);
    auto frame = rawFrame(gpa);
    bool all_zero = true;
    for (std::uint8_t b : frame)
        all_zero &= b == 0;
    EXPECT_TRUE(all_zero);
}

TEST_F(EngineTest, MultiPageRegionIndependentStates)
{
    auto app = appCpu();
    auto kernel = kernelCpu();
    constexpr Gpa gpa1 = 0x5000;
    os_.map(appAsid, appVa + pageSize, gpa1);
    os_.map(kernelAsid, kernelVaOf(gpa1), gpa1);

    app.store64(appVa, 100);
    app.store64(appVa + pageSize, 200);
    kernel.load64(kernelVaOf(gpa)); // Encrypt only page 0.
    EXPECT_EQ(engine_.stats().value("page_encrypts"), 1u);
    // Page 1 stays plaintext-resident and readable without decryption.
    std::uint64_t decrypts = engine_.stats().value("page_decrypts");
    EXPECT_EQ(app.load64(appVa + pageSize), 200u);
    EXPECT_EQ(engine_.stats().value("page_decrypts"), decrypts);
    EXPECT_EQ(app.load64(appVa), 100u);
}

TEST_F(EngineTest, CtcHashRoundTrip)
{
    crypto::Digest h = crypto::Sha256::hash(
        std::vector<std::uint8_t>{1, 2, 3});
    engine_.bindCtc(domain_, 0x7000);
    auto before = engine_.verifyCtcHash(domain_, h);
    ASSERT_FALSE(before.ok());
    EXPECT_EQ(before.error(), cloak::CloakError::NoCtcHash);
    engine_.recordCtcHash(domain_, h);
    EXPECT_TRUE(engine_.verifyCtcHash(domain_, h).ok());
    crypto::Digest wrong = crypto::Sha256::hash(
        std::vector<std::uint8_t>{1, 2, 4});
    auto mismatch = engine_.verifyCtcHash(domain_, wrong);
    ASSERT_FALSE(mismatch.ok());
    EXPECT_EQ(mismatch.error(), cloak::CloakError::CtcHashMismatch);
    // Both rejections were audited with their typed reason.
    EXPECT_EQ(engine_.auditLog().back().code,
              cloak::CloakError::CtcHashMismatch);
}

TEST_F(EngineTest, ForkAttachRequiresToken)
{
    auto bogus = engine_.forkAttach(9, 9, 0xdead);
    ASSERT_FALSE(bogus.ok());
    EXPECT_EQ(bogus.error(), cloak::CloakError::BadForkToken);
    std::uint64_t token = engine_.prepareFork(domain_).value();
    // Attach before the snapshot is refused.
    auto early = engine_.forkAttach(9, 9, token);
    ASSERT_FALSE(early.ok());
    EXPECT_EQ(early.error(), cloak::CloakError::ForkNotSnapshotted);
    ASSERT_TRUE(engine_.snapshotFork(domain_, token).ok());
    // Snapshots are single use too.
    auto again = engine_.snapshotFork(domain_, token);
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(again.error(),
              cloak::CloakError::ForkAlreadySnapshotted);
    DomainId child = engine_.forkAttach(9, 9, token).value();
    EXPECT_NE(child, systemDomain);
    // Tokens are single use.
    EXPECT_FALSE(engine_.forkAttach(10, 10, token).ok());
    // Child inherits the identity.
    EXPECT_EQ(engine_.findDomain(child)->identity,
              programIdentity("victim"));
}

TEST_F(EngineTest, ForkSnapshotRequiresOwningDomain)
{
    std::uint64_t token = engine_.prepareFork(domain_).value();
    DomainId other = engine_.createDomain(12, 12,
                                          programIdentity("other"));
    auto foreign = engine_.snapshotFork(other, token);
    ASSERT_FALSE(foreign.ok());
    EXPECT_EQ(foreign.error(), cloak::CloakError::BadForkToken);
    EXPECT_TRUE(engine_.snapshotFork(domain_, token).ok());
}

TEST_F(EngineTest, ForkedChildDecryptsInheritedPages)
{
    auto app = appCpu();
    auto kernel = kernelCpu();
    app.store64(appVa, 0xc0ffee);
    kernel.load64(kernelVaOf(gpa)); // Encrypt parent page.
    auto cipher = rawFrame(gpa);

    // Kernel eagerly copies the ciphertext for the child.
    constexpr Gpa childGpa = 0xb000;
    machine_.memory().write(vmm_.pmap().translate(childGpa), cipher);

    std::uint64_t token = engine_.prepareFork(domain_).value();
    ASSERT_TRUE(engine_.snapshotFork(domain_, token).ok());

    // The parent may keep running and re-encrypt its own pages after
    // the snapshot without invalidating the child's copies.
    app.store64(appVa, 0xfeedf00d);    // dirty again
    kernel.load64(kernelVaOf(gpa));    // fresh IV + version bump

    constexpr Asid childAsid = 9;
    DomainId child = engine_.forkAttach(childAsid, 9, token).value();
    ASSERT_NE(child, systemDomain);
    os_.map(childAsid, appVa, childGpa);

    vmm::Vcpu child_cpu(vmm_, vmm::Context{childAsid, child, false});
    EXPECT_EQ(child_cpu.load64(appVa), 0xc0ffeeu);

    // Divergence: child writes do not affect the parent, which kept
    // running with its own newer value.
    child_cpu.store64(appVa, 1);
    EXPECT_EQ(app.load64(appVa), 0xfeedf00du);
}

} // namespace
} // namespace osh::cloak
