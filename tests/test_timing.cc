/**
 * @file
 * Timing side-channel campaign + virtualized-clock hardening tests.
 *
 * Covers both halves of the timing story:
 *
 *   - the attack: with hardening off, every timing oracle (victim-cache
 *     probe, clean-page probe, async drain-stall, metadata hit/miss)
 *     recovers the timing victim's balanced 32-bit secret well above
 *     chance and the campaign classifies the cell LEAK;
 *   - the defense: with the virtualized per-context clock and the
 *     constant-cost cloak responses on (the campaign default), the same
 *     cells are Harmless;
 *   - the clock itself: knobs at zero replay raw machine cycles
 *     bit-identically (every committed baseline depends on this), and
 *     non-zero knobs give a seeded, monotonic, per-ASID spoofed
 *     sequence that is reproducible across runs, vCPU counts and async
 *     eviction depths;
 *   - the Sys::Sleep clamp: a hostile/buggy guest cannot charge an
 *     unvalidated 2^64-cycle sleep to the simulated clock;
 *   - the CloakIntrospect hypercall: a cloaked guest can query which
 *     hardening posture it is running under.
 */

#include "attack/campaign.hh"
#include "attack/points.hh"
#include "os/env.hh"
#include "os/syscalls.hh"
#include "system/system.hh"
#include "vmm/hooks.hh"
#include "vmm/vmm.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

#include <numeric>

namespace osh
{
namespace
{

using attack::AttackPoint;
using attack::runCell;
using attack::Verdict;
using os::Env;
using system::System;
using system::SystemConfig;

constexpr Cycles kFuzz = 1'000'000;
constexpr Cycles kOffset = 1'000'000;

SystemConfig
hardenedConfig(std::uint64_t seed, std::size_t vcpus = 0,
               std::size_t async_depth = 0)
{
    return SystemConfig::Builder{}
        .seed(seed)
        .guestFrames(512)
        .cloaking(true)
        .vcpus(vcpus)
        .asyncEvictDepth(async_depth)
        .clockFuzzCycles(kFuzz)
        .clockOffsetCycles(kOffset)
        .constantCostCloak(true)
        .build();
}

// ---------------------------------------------------------------------------
// The virtualized clock
// ---------------------------------------------------------------------------

TEST(VirtualClock, LegacyKnobsReplayRawCyclesBitIdentically)
{
    // Both knobs zero is the default: readTsc must be the raw global
    // cycle counter, exactly — this is what lets every committed bench
    // baseline and expectation table replay unchanged.
    System sys(SystemConfig::Builder{}.cloaking(true).seed(7).build());
    workloads::registerAll(sys);
    EXPECT_EQ(sys.vmm().readTsc(1), sys.cycles());
    auto r = sys.runProgram("wl.matmul", {"8"});
    ASSERT_EQ(r.status, 0);
    EXPECT_EQ(sys.vmm().readTsc(1), sys.cycles());
    EXPECT_EQ(sys.vmm().readTsc(42), sys.cycles());
    // The legacy stat set is untouched on the exact path.
    EXPECT_EQ(sys.vmm().stats().value("tsc_virtual_reads"), 0u);
}

TEST(VirtualClock, FuzzedSequenceIsSeededAndMonotonic)
{
    System sys(hardenedConfig(11));
    std::vector<Cycles> seq;
    for (int i = 0; i < 64; ++i)
        seq.push_back(sys.vmm().readTsc(3));
    for (std::size_t i = 1; i < seq.size(); ++i)
        EXPECT_LT(seq[i - 1], seq[i]) << "virtual time went backwards";
    // Spoofing actually happened: the first read is displaced from the
    // raw counter (offset + fuzz are both drawn from [0, 1e6] and the
    // draw being exactly 0 twice for this seed would be a miracle).
    EXPECT_NE(seq[0], 0u);
    EXPECT_GT(sys.vmm().stats().value("tsc_virtual_reads"), 0u);
}

TEST(VirtualClock, SameSeedSameSequenceAcrossRunsAndTopology)
{
    // The spoofed sequence depends only on (system seed, ASID, read
    // index) — not on wall clock, vCPU count or async depth — so runs
    // replay bit-identically across process restarts and CI's
    // --vcpus=4 / --async-depth=4 re-runs.
    auto sample = [](std::size_t vcpus, std::size_t depth) {
        System sys(hardenedConfig(23, vcpus, depth));
        std::vector<Cycles> seq;
        for (int i = 0; i < 32; ++i)
            seq.push_back(sys.vmm().readTsc(5));
        return seq;
    };
    auto base = sample(0, 0);
    EXPECT_EQ(base, sample(0, 0)) << "not reproducible run to run";
    EXPECT_EQ(base, sample(4, 0)) << "vCPU count changed the sequence";
    EXPECT_EQ(base, sample(0, 4)) << "async depth changed the sequence";
}

TEST(VirtualClock, DistinctAsidsGetDistinctViews)
{
    System sys(hardenedConfig(31));
    // Different address spaces draw different offsets and fuzz
    // streams: a cross-context clock-correlation attack sees skew.
    EXPECT_NE(sys.vmm().readTsc(1), sys.vmm().readTsc(2));
    // A different system seed re-keys every stream.
    System sys2(hardenedConfig(32));
    EXPECT_NE(sys.vmm().readTsc(9), sys2.vmm().readTsc(9));
}

// ---------------------------------------------------------------------------
// Sys::Sleep clamp (satellite regression)
// ---------------------------------------------------------------------------

TEST(SleepClamp, RejectsUnvalidatedGuestCycleCounts)
{
    System sys(SystemConfig::Builder{}.cloaking(true).seed(3).build());
    sys.addProgram("sleeper", os::Program{[](Env& env) {
        // Hostile argument: one cycle past the clamp must bounce with
        // -EINVAL and charge nothing.
        Cycles before = env.clock();
        if (env.syscall(os::Sys::Sleep, {os::maxSleepCycles + 1}) !=
            -static_cast<std::int64_t>(os::errInval))
            return 1;
        Cycles mid = env.clock();
        // The refused sleep costs only the trap round-trips, far less
        // than the 2^32 cycles it asked for.
        if (mid - before > os::maxSleepCycles / 2)
            return 2;
        // A sane sleep still works and actually advances time.
        if (env.syscall(os::Sys::Sleep, {10'000}) != 0)
            return 3;
        if (env.clock() - mid < 10'000)
            return 4;
        return 0;
    }, true, 16});
    auto r = sys.runProgram("sleeper");
    EXPECT_EQ(r.status, 0) << r.killReason;
}

// ---------------------------------------------------------------------------
// CloakIntrospect hypercall
// ---------------------------------------------------------------------------

TEST(Introspect, ReportsHardeningPosture)
{
    System sys(hardenedConfig(5, 0, 4));
    sys.addProgram("introspect", os::Program{[](Env& env) {
        auto query = [&env](std::uint64_t sel) {
            std::uint64_t args[1] = {sel};
            return env.vcpu().hypercall(
                vmm::Hypercall::CloakIntrospect, args);
        };
        if (query(vmm::introspectClockFuzz) !=
            static_cast<std::int64_t>(kFuzz))
            return 1;
        if (query(vmm::introspectClockOffset) !=
            static_cast<std::int64_t>(kOffset))
            return 2;
        if (query(vmm::introspectConstantCost) != 1)
            return 3;
        if (query(vmm::introspectAsyncEvictDepth) != 4)
            return 4;
        if (query(vmm::introspectVictimCacheCapacity) < 0)
            return 5;
        if (query(99) != -1) // unknown selector
            return 6;
        return 0;
    }, true, 16});
    auto r = sys.runProgram("introspect");
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(Introspect, LegacySystemReportsNoHardening)
{
    System sys(SystemConfig::Builder{}.cloaking(true).seed(5).build());
    sys.addProgram("introspect", os::Program{[](Env& env) {
        auto query = [&env](std::uint64_t sel) {
            std::uint64_t args[1] = {sel};
            return env.vcpu().hypercall(
                vmm::Hypercall::CloakIntrospect, args);
        };
        if (query(vmm::introspectClockFuzz) != 0)
            return 1;
        if (query(vmm::introspectClockOffset) != 0)
            return 2;
        if (query(vmm::introspectConstantCost) != 0)
            return 3;
        return 0;
    }, true, 16});
    auto r = sys.runProgram("introspect");
    EXPECT_EQ(r.status, 0) << r.killReason;
}

// ---------------------------------------------------------------------------
// The timing campaign: LEAK unhardened, clean hardened
// ---------------------------------------------------------------------------

TEST(TimingSecret, IsBalanced)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 17ull}) {
        auto bits = workloads::timingSecretBits(seed);
        ASSERT_EQ(bits.size(), 32u);
        EXPECT_EQ(std::accumulate(bits.begin(), bits.end(), 0), 16)
            << "secret must be balanced so chance recovery is 50%";
    }
}

TEST(TimingCampaign, UnhardenedOraclesLeakTheSecret)
{
    // Every timing-oracle family beats the 24/32 significance bar on
    // the unhardened system. This is the vulnerability demonstration:
    // the deterministic cost model is a clean side channel.
    for (AttackPoint p :
         {AttackPoint::TimingVictimProbe, AttackPoint::TimingCleanProbe,
          AttackPoint::TimingAsyncDrain,
          AttackPoint::TimingMetadataProbe}) {
        auto cell = runCell(1, p, "wl.victim.timing", 0, 0,
                            /*timing_hardening=*/false);
        EXPECT_EQ(cell.verdict, Verdict::Leak)
            << attackPointName(p) << ": " << cell.detail;
    }
}

TEST(TimingCampaign, HardenedOraclesRecoverNothing)
{
    // Same cells, hardening on (the campaign default): the virtual
    // clock drowns the deltas and the constant-cost paths remove them,
    // so the oracle drops to chance and the cells classify Harmless.
    for (AttackPoint p :
         {AttackPoint::TimingVictimProbe, AttackPoint::TimingCleanProbe,
          AttackPoint::TimingAsyncDrain,
          AttackPoint::TimingMetadataProbe}) {
        auto cell = runCell(1, p, "wl.victim.timing", 0, 0,
                            /*timing_hardening=*/true);
        EXPECT_EQ(cell.verdict, Verdict::Harmless)
            << attackPointName(p) << ": " << cell.detail;
        EXPECT_GT(cell.firings, 0u)
            << "hardening must not silence the probe, only blind it";
    }
}

TEST(TimingCampaign, VerdictsAreTopologyInvariant)
{
    // CI replays the expectation table at --vcpus=4 and
    // --async-depth=4; the unhardened LEAK must be just as stable.
    for (auto [vcpus, depth] :
         {std::pair<std::size_t, std::size_t>{4, 0}, {0, 4}}) {
        auto cell =
            runCell(2, AttackPoint::TimingVictimProbe,
                    "wl.victim.timing", vcpus, depth, false);
        EXPECT_EQ(cell.verdict, Verdict::Leak) << cell.detail;
    }
}

TEST(TimingCampaign, BaselineTimingVictimRunsClean)
{
    auto cell = runCell(1, AttackPoint::Baseline, "wl.victim.timing");
    EXPECT_EQ(cell.verdict, Verdict::Harmless) << cell.detail;
    EXPECT_EQ(cell.firings, 0u);
}

TEST(TimingCampaign, ProbesStayQuietOnOtherVictims)
{
    // The probe needs the timing victim's 20-page arena shape; against
    // a different victim it must not fire at all (and must classify
    // Harmless), keeping the default full matrix clean.
    auto cell = runCell(1, AttackPoint::TimingVictimProbe,
                        "wl.victim.compute", 0, 0, false);
    EXPECT_EQ(cell.verdict, Verdict::Harmless) << cell.detail;
    EXPECT_EQ(cell.firings, 0u);
}

} // namespace
} // namespace osh
