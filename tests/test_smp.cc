/**
 * @file
 * SMP invariance tests.
 *
 * The multi-vCPU simulation is only trustworthy if parallel structure
 * never changes what the guest computes:
 *
 *   - vCPU-count invariance: dispatch order comes from the single
 *     round-robin ready queue and preemption is op-count based, so
 *     guest-visible results (statuses, checksums) are identical at
 *     1, 2 or 8 vCPUs — only cycle totals may differ, because each
 *     core warms a private TLB;
 *   - shard-count invariance is stronger: the metadata LRU cache stays
 *     global, resource ids stay globally monotonic and key derivation
 *     is pure, so sharding changes *nothing* — results AND cycles are
 *     bit-identical at any stripe count;
 *   - fork/exec/exit must hold up when parent and child land in
 *     different metadata shards;
 *   - attack-campaign verdicts must not move with the vCPU count (the
 *     216-cell expectation table is pinned single-core);
 *   - single-core runs must not grow new stat keys (bench baselines
 *     enumerate them).
 */

#include "attack/campaign.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

namespace osh::system
{
namespace
{

constexpr std::uint64_t smpSeed = 7;
constexpr std::uint64_t tenantPages = 2;

struct RunOutcome
{
    std::vector<int> statuses;
    Cycles cycles = 0;
};

/**
 * Run @p n cloaked tenants concurrently (short preemption tick, so
 * they genuinely interleave) and collect their exit statuses in launch
 * order plus total simulated cycles.
 */
RunOutcome
runTenants(std::size_t vcpus, std::size_t shards, std::uint64_t n)
{
    auto cfg = SystemConfig::Builder{}
                   .seed(smpSeed)
                   .guestFrames(1024)
                   .cloaking(true)
                   .vcpus(vcpus)
                   .metadataShards(shards)
                   .preemptOpsPerTick(300)
                   .build();
    System sys(cfg);
    workloads::registerAll(sys);
    std::vector<Pid> pids;
    for (std::uint64_t i = 0; i < n; ++i) {
        pids.push_back(sys.launch(
            "wl.tenant",
            {std::to_string(i), std::to_string(tenantPages)}));
    }
    sys.run();
    RunOutcome out;
    for (Pid pid : pids) {
        const ExitResult* r = sys.resultOf(pid);
        EXPECT_NE(r, nullptr);
        EXPECT_FALSE(r->killed) << r->killReason;
        out.statuses.push_back(r != nullptr ? r->status : -999);
    }
    out.cycles = sys.cycles();
    return out;
}

TEST(Smp, TenantsComputeCorrectlyWhileInterleaved)
{
    // Concurrent cloaked faults on distinct ASIDs across 4 vCPUs and
    // 4 shards: every tenant must still match the host-side mirror.
    RunOutcome out = runTenants(4, 4, 12);
    for (std::uint64_t i = 0; i < out.statuses.size(); ++i) {
        EXPECT_EQ(out.statuses[i],
                  workloads::tenantStatus(smpSeed, i, tenantPages))
            << "tenant " << i;
    }
}

TEST(Smp, GuestResultsInvariantAcrossVcpuCounts)
{
    RunOutcome one = runTenants(1, 1, 12);
    RunOutcome two = runTenants(2, 1, 12);
    RunOutcome eight = runTenants(8, 1, 12);
    EXPECT_EQ(one.statuses, two.statuses);
    EXPECT_EQ(one.statuses, eight.statuses);
}

TEST(Smp, CyclesAndResultsInvariantAcrossShardCounts)
{
    // Sharding is pure concurrency structure: with the vCPU count
    // fixed, every stripe count must produce bit-identical runs.
    RunOutcome s1 = runTenants(2, 1, 12);
    RunOutcome s2 = runTenants(2, 2, 12);
    RunOutcome s8 = runTenants(2, 8, 12);
    EXPECT_EQ(s1.statuses, s2.statuses);
    EXPECT_EQ(s1.statuses, s8.statuses);
    EXPECT_EQ(s1.cycles, s2.cycles);
    EXPECT_EQ(s1.cycles, s8.cycles);
}

/** Run one workload to completion, returning status + checksum + cycles. */
std::tuple<int, std::string, Cycles>
runWorkload(const std::string& name, std::size_t vcpus,
            std::size_t shards)
{
    auto cfg = SystemConfig::Builder{}
                   .seed(smpSeed)
                   .guestFrames(1024)
                   .cloaking(true)
                   .vcpus(vcpus)
                   .metadataShards(shards)
                   .build();
    System sys(cfg);
    workloads::registerAll(sys);
    ExitResult r = sys.runProgram(name);
    return {r.status, workloads::resultOf(sys, name), sys.cycles()};
}

TEST(Smp, ForkExecExitAcrossShards)
{
    // wl.build forks/spawns a pipe tree; wl.victim.fileio execs across
    // a protected file. Parent and children land in different metadata
    // shards at 4 stripes; everything must match the 1-stripe run.
    for (const char* wl : {"wl.build", "wl.victim.fileio"}) {
        auto [st1, sum1, cyc1] = runWorkload(wl, 1, 1);
        auto [st4, sum4, cyc4] = runWorkload(wl, 1, 4);
        EXPECT_EQ(st1, st4) << wl;
        EXPECT_EQ(sum1, sum4) << wl;
        EXPECT_EQ(cyc1, cyc4) << wl;
        EXPECT_EQ(st1, 0) << wl;
    }
}

TEST(Smp, CampaignVerdictsInvariantAcrossVcpuCounts)
{
    // One smoke cell per attack family (swap tamper, seal tamper,
    // snoop): verdict, detail and status must not move with the vCPU
    // count — the committed 216-cell expectation table stays valid for
    // multi-core campaign runs.
    const std::vector<attack::AttackPoint> points = {
        attack::AttackPoint::Baseline,
        attack::AttackPoint::SwapTamperByte,
        attack::AttackPoint::SyscallSnoop,
    };
    for (attack::AttackPoint p : points) {
        attack::CampaignCell base =
            attack::runCell(1, p, "wl.victim.compute", 1);
        attack::CampaignCell smp =
            attack::runCell(1, p, "wl.victim.compute", 4);
        EXPECT_EQ(base.verdict, smp.verdict)
            << attack::attackPointName(p);
        EXPECT_EQ(base.detail, smp.detail) << attack::attackPointName(p);
        EXPECT_EQ(base.status, smp.status) << attack::attackPointName(p);
        EXPECT_EQ(base.killed, smp.killed) << attack::attackPointName(p);
    }
}

/** Does the group's snapshot contain a counter with this name? */
bool
hasCounter(StatGroup& group, const std::string& name)
{
    for (const auto& [n, v] : group.snapshot()) {
        if (n == name)
            return true;
    }
    return false;
}

TEST(Smp, SingleCoreRunsKeepTheLegacyStatSet)
{
    // The committed bench baselines enumerate every stat key of a
    // single-core run; SMP bookkeeping must not leak into them.
    auto run = [](std::size_t vcpus) {
        auto cfg = SystemConfig::Builder{}
                       .seed(smpSeed)
                       .guestFrames(1024)
                       .cloaking(true)
                       .vcpus(vcpus)
                       .preemptOpsPerTick(300)
                       .build();
        auto sys = std::make_unique<System>(cfg);
        workloads::registerAll(*sys);
        sys->launch("wl.tenant", {"0", "2"});
        sys->launch("wl.tenant", {"1", "2"});
        sys->run();
        return sys;
    };
    auto legacy = run(1);
    EXPECT_FALSE(hasCounter(legacy->sched().stats(), "dispatches"));
    EXPECT_FALSE(hasCounter(legacy->sched().stats(), "cpu_migrations"));
    EXPECT_FALSE(hasCounter(legacy->vmm().stats(), "switches_cpu0"));

    auto smp = run(2);
    EXPECT_TRUE(hasCounter(smp->sched().stats(), "dispatches"));
    EXPECT_TRUE(hasCounter(smp->vmm().stats(), "switches_cpu0") ||
                hasCounter(smp->vmm().stats(), "switches_cpu1"));
}

TEST(Smp, BuilderValidatesSmpKnobs)
{
    EXPECT_THROW(SystemConfig::Builder{}.vcpus(65).build(),
                 std::invalid_argument);
    EXPECT_THROW(SystemConfig::Builder{}.metadataShards(257).build(),
                 std::invalid_argument);
    EXPECT_THROW(SystemConfig::Builder{}
                     .cloaking(false)
                     .metadataShards(4)
                     .build(),
                 std::invalid_argument);
    // The legal edges build.
    EXPECT_NO_THROW(SystemConfig::Builder{}
                        .vcpus(64)
                        .metadataShards(256)
                        .build());
    EXPECT_NO_THROW(
        SystemConfig::Builder{}.cloaking(false).metadataShards(1).build());
}

} // namespace
} // namespace osh::system
