/**
 * @file
 * Batched syscall submission tests: batched-vs-serial equivalence
 * (identical guest results and VFS state, strictly fewer world
 * switches), depth-1 identity with the legacy per-trap path, ring
 * overflow/underflow rejection, and malformed-descriptor handling.
 */

#include "base/bytes.hh"
#include "cloak/engine.hh"
#include "os/env.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

namespace osh
{
namespace
{

using os::Env;
using system::System;
using system::SystemConfig;

SystemConfig
config(bool cloaked)
{
    SystemConfig cfg;
    cfg.cloakingEnabled = cloaked;
    cfg.guestFrames = 2048;
    cfg.preemptOpsPerTick = 0;
    cfg.seed = 97;
    return cfg;
}

system::ExitResult
run(System& sys, std::function<int(Env&)> body)
{
    sys.addProgram("batchtest", os::Program{std::move(body), true, 64});
    return sys.runProgram("batchtest");
}

// ---------------------------------------------------------------------------
// Batched-vs-serial equivalence
// ---------------------------------------------------------------------------

struct ServeOutcome
{
    std::string result;   // workload result hash
    std::string response; // final sink file contents
    std::uint64_t switches;
    std::uint64_t cycles;
};

ServeOutcome
serveFiles(bool cloaked, const std::string& depth)
{
    System sys(config(cloaked));
    workloads::registerAll(sys);
    std::vector<std::string> argv = {"64", "24", "2048", "1"};
    if (!depth.empty())
        argv.push_back(depth);
    auto r = sys.runProgram("wl.fileserver", argv);
    EXPECT_EQ(r.status, 0) << r.killReason;
    return {workloads::resultOf(sys, "wl.fileserver"),
            workloads::readGuestFile(sys, "/www/response"),
            sys.vmm().stats().value("world_switches"), sys.cycles()};
}

TEST(BatchEquivalence, CloakedBatchedMatchesSerial)
{
    ServeOutcome serial = serveFiles(true, "");
    ServeOutcome batched = serveFiles(true, "8");

    // Same request stream -> identical responses, identical result
    // hash, identical final VFS state. Only the trap count may differ.
    EXPECT_EQ(batched.result, serial.result);
    EXPECT_EQ(batched.response, serial.response);
    EXPECT_FALSE(serial.result.empty());

    // The point of the ring: strictly fewer secure control transfers.
    EXPECT_LT(batched.switches, serial.switches);
    EXPECT_LT(batched.cycles, serial.cycles);
}

TEST(BatchEquivalence, NativeBatchedMatchesSerial)
{
    // Uncloaked, the kernel ring is exercised directly (no shim).
    ServeOutcome serial = serveFiles(false, "");
    ServeOutcome batched = serveFiles(false, "8");
    EXPECT_EQ(batched.result, serial.result);
    EXPECT_EQ(batched.response, serial.response);
}

TEST(BatchEquivalence, OversizedTransfersFallBackCorrectly)
{
    // 64 KiB requests x depth 8 exceed the shim's staging arena; the
    // shim must flush/fall back transparently with identical results.
    auto serve = [](const std::string& depth) {
        System sys(config(true));
        workloads::registerAll(sys);
        std::vector<std::string> argv = {"256", "8", "65536", "1"};
        if (!depth.empty())
            argv.push_back(depth);
        auto r = sys.runProgram("wl.fileserver", argv);
        EXPECT_EQ(r.status, 0) << r.killReason;
        return std::pair{workloads::resultOf(sys, "wl.fileserver"),
                         workloads::readGuestFile(sys, "/www/response")};
    };
    auto serial = serve("");
    auto batched = serve("8");
    EXPECT_EQ(batched.first, serial.first);
    EXPECT_EQ(batched.second, serial.second);
}

// ---------------------------------------------------------------------------
// Sys::Clock serial equivalence inside a batch
// ---------------------------------------------------------------------------

TEST(BatchClock, BatchedClockIsSerialEquivalent)
{
    // The ring dispatches entries live, one at a time, so a Clock
    // entry must observe the time at ITS dispatch position — after the
    // cost of every earlier entry in the batch, before every later
    // one — exactly as serially-issued clocks bracketing the same
    // work would. A kernel that snapshotted the clock once per batch
    // (or reordered dispatch) would flatten these strict inequalities.
    for (bool cloaked : {true, false}) {
        System sys(config(cloaked));
        auto r = run(sys, [](Env& env) {
            GuestVA buf = env.allocPages(1);
            std::int64_t fd =
                env.open("/clk.dat", os::openCreate | os::openRead |
                                         os::openWrite);
            if (fd < 0)
                return 1;
            if (env.write(static_cast<std::uint64_t>(fd), buf,
                          pageSize) !=
                static_cast<std::int64_t>(pageSize))
                return 2;
            Cycles before = env.clock();
            std::vector<os::BatchEntry> entries = {
                {os::Sys::Clock, {}},
                {os::Sys::Pread,
                 {static_cast<std::uint64_t>(fd), buf, pageSize, 0}},
                {os::Sys::Clock, {}},
                {os::Sys::Clock, {}},
            };
            std::vector<std::int64_t> results;
            if (env.submitBatch(entries, results) != 4)
                return 3;
            Cycles after = env.clock();
            Cycles c0 = static_cast<Cycles>(results[0]);
            Cycles c2 = static_cast<Cycles>(results[2]);
            Cycles c3 = static_cast<Cycles>(results[3]);
            if (!(before < c0))
                return 4; // batch clock predates submission
            if (!(c0 < c2))
                return 5; // pread's cost invisible to the next clock
            if (!(c2 < c3))
                return 6; // adjacent entries collapsed to one instant
            if (!(c3 < after))
                return 7; // batch clock postdates completion
            // The pread must dominate the gap between its bracketing
            // clocks (disk access costs dwarf dispatch overhead).
            if (c2 - c0 < (c3 - c2))
                return 8;
            env.close(static_cast<std::uint64_t>(fd));
            return 0;
        });
        EXPECT_EQ(r.status, 0)
            << (cloaked ? "cloaked: " : "native: ") << r.killReason;
    }
}

// ---------------------------------------------------------------------------
// Depth-1 identity with the legacy path
// ---------------------------------------------------------------------------

TEST(BatchDepthOne, SingleEntryBatchMatchesDirectCall)
{
    auto measure = [](bool batched) {
        System sys(config(true));
        auto r = run(sys, [batched](Env& env) {
            std::int64_t fd = env.open("/d.dat", os::openCreate |
                                                     os::openRead |
                                                         os::openWrite);
            GuestVA buf = env.allocPages(1);
            env.write(static_cast<std::uint64_t>(fd), buf, pageSize);
            // Warm up the lazy batch area in BOTH variants so the
            // one-time mmap doesn't skew the switch counts.
            {
                std::vector<os::BatchEntry> warm = {
                    {os::Sys::GetPid, {}}};
                std::vector<std::int64_t> res;
                if (env.submitBatch(warm, res) != 1)
                    return 3;
            }
            for (int i = 0; i < 16; ++i) {
                std::int64_t got;
                if (batched) {
                    std::vector<os::BatchEntry> e = {
                        {os::Sys::Pread,
                         {static_cast<std::uint64_t>(fd), buf, pageSize,
                          0}}};
                    std::vector<std::int64_t> res;
                    if (env.submitBatch(e, res) != 1)
                        return 1;
                    got = res[0];
                } else {
                    got = env.pread(static_cast<std::uint64_t>(fd), buf,
                                    pageSize, 0);
                }
                if (got != static_cast<std::int64_t>(pageSize))
                    return 2;
            }
            env.close(static_cast<std::uint64_t>(fd));
            return 0;
        });
        EXPECT_EQ(r.status, 0) << r.killReason;
        return std::pair{sys.vmm().stats().value("world_switches"),
                         sys.cloak()->stats().value("shim_batch_traps")};
    };
    auto [direct_sw, direct_traps] = measure(false);
    auto [batch_sw, batch_traps] = measure(true);

    // A depth-1 batch is routed through the legacy per-call dispatch:
    // same number of world switches, and the kernel-facing ring (and
    // the marshal arena behind it) is never touched.
    EXPECT_EQ(batch_sw, direct_sw);
    EXPECT_EQ(direct_traps, 0u);
    EXPECT_EQ(batch_traps, 0u);
}

// ---------------------------------------------------------------------------
// Ring overflow / underflow and malformed descriptors
// ---------------------------------------------------------------------------

/** Hand-craft a submission ring so malformed fields reach the shim. */
GuestVA
writeRing(Env& env, GuestVA sub,
          const std::vector<std::array<std::uint64_t, 8>>& descs)
{
    std::vector<std::uint8_t> raw(descs.size() * os::batchDescBytes, 0);
    for (std::size_t i = 0; i < descs.size(); ++i)
        for (std::size_t w = 0; w < 8; ++w)
            storeLe64(raw.data() + i * os::batchDescBytes + 8 * w,
                      descs[i][w]);
    env.writeBytes(sub, raw);
    return sub + os::maxBatchDepth * os::batchDescBytes;
}

std::int64_t
completionAt(Env& env, GuestVA comp, std::uint64_t slot)
{
    std::vector<std::uint8_t> raw(os::batchCompBytes);
    env.readBytes(comp + slot * os::batchCompBytes, raw);
    return static_cast<std::int64_t>(loadLe64(raw.data()));
}

void
runRingTests(bool cloaked)
{
    System sys(config(cloaked));
    auto r = run(sys, [](Env& env) {
        GuestVA ring = env.allocPages(2);
        const std::uint64_t gp =
            static_cast<std::uint64_t>(os::Sys::GetPid);

        // Underflow and overflow: count 0 and count > maxBatchDepth
        // are rejected outright, no completions written.
        std::vector<std::array<std::uint64_t, 8>> one = {
            {gp, 0, 0, 0, 0, 0, 7, 0}};
        GuestVA comp = writeRing(env, ring, one);
        if (env.syscall(os::Sys::SubmitBatch, {ring, comp, 0}) !=
            -os::errInval)
            return 1;
        if (env.syscall(os::Sys::SubmitBatch,
                        {ring, comp, os::maxBatchDepth + 1}) !=
            -os::errInval)
            return 2;

        // A malformed descriptor (reserved word set) fails with
        // -errInval in its own completion slot while its neighbours
        // execute normally.
        std::vector<std::array<std::uint64_t, 8>> mixed = {
            {gp, 0, 0, 0, 0, 0, 11, 0},
            {gp, 0, 0, 0, 0, 0, 12, 0xdead},
            {gp, 0, 0, 0, 0, 0, 13, 0}};
        comp = writeRing(env, ring, mixed);
        if (env.syscall(os::Sys::SubmitBatch, {ring, comp, 3}) != 3)
            return 3;
        std::int64_t pid = static_cast<std::int64_t>(env.getpid());
        if (completionAt(env, comp, 0) != pid)
            return 4;
        if (completionAt(env, comp, 1) != -os::errInval)
            return 5;
        if (completionAt(env, comp, 2) != pid)
            return 6;

        // Non-batchable syscalls are refused per entry: open must not
        // be dispatchable from a ring, and a nested SubmitBatch is
        // rejected rather than recursed into.
        std::vector<std::array<std::uint64_t, 8>> bad = {
            {static_cast<std::uint64_t>(os::Sys::Open), 0, 0, 0, 0, 0,
             21, 0},
            {static_cast<std::uint64_t>(os::Sys::SubmitBatch), ring, 0,
             1, 0, 0, 22, 0},
            {gp, 0, 0, 0, 0, 0, 23, 0}};
        comp = writeRing(env, ring, bad);
        if (env.syscall(os::Sys::SubmitBatch, {ring, comp, 3}) != 3)
            return 7;
        if (completionAt(env, comp, 0) != -os::errInval)
            return 8;
        if (completionAt(env, comp, 1) != -os::errInval)
            return 9;
        if (completionAt(env, comp, 2) != pid)
            return 10;
        return 0;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(BatchRing, RejectionsCloaked) { runRingTests(true); }
TEST(BatchRing, RejectionsNative) { runRingTests(false); }

TEST(BatchRing, EnvWrapperRejectsBadDepths)
{
    System sys(config(true));
    auto r = run(sys, [](Env& env) {
        std::vector<os::BatchEntry> none;
        std::vector<std::int64_t> res;
        if (env.submitBatch(none, res) != -os::errInval)
            return 1;
        std::vector<os::BatchEntry> many(
            os::maxBatchDepth + 1, os::BatchEntry{os::Sys::GetPid, {}});
        if (env.submitBatch(many, res) != -os::errInval)
            return 2;
        return 0;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

// ---------------------------------------------------------------------------
// Fstat through the ring: full, defined-byte completion
// ---------------------------------------------------------------------------

TEST(BatchRing, FstatWritesOnlyDefinedBytes)
{
    // A batched fstat copies exactly sizeof(StatBuf) fully-initialized
    // bytes: poison the destination and verify every byte inside the
    // struct is defined (matches a zeroed reference) and every byte
    // beyond it is untouched.
    System sys(config(true));
    auto r = run(sys, [](Env& env) {
        std::int64_t fd = env.open("/s.dat", os::openCreate |
                                                 os::openWrite);
        env.writeAll(static_cast<std::uint64_t>(fd), "abcdef");

        GuestVA buf = env.allocPages(1);
        std::vector<std::uint8_t> poison(64, 0xa5);
        env.writeBytes(buf, poison);

        std::vector<os::BatchEntry> e = {
            {os::Sys::Fstat, {static_cast<std::uint64_t>(fd), buf}}};
        std::vector<std::int64_t> res;
        if (env.submitBatch(e, res) != 1 || res[0] != 0)
            return 1;

        std::vector<std::uint8_t> got(64);
        env.readBytes(buf, got);

        os::StatBuf want{};
        want.size = 6;
        std::vector<std::uint8_t> ref(sizeof(os::StatBuf), 0);
        std::memcpy(ref.data(), &want, sizeof(want));
        ref[12] = got[12]; // inode is fd-assignment dependent
        ref[13] = got[13];
        ref[14] = got[14];
        ref[15] = got[15];
        for (std::size_t i = 0; i < sizeof(os::StatBuf); ++i)
            if (got[i] != ref[i])
                return 2; // uninitialized or wrong byte leaked through
        for (std::size_t i = sizeof(os::StatBuf); i < 64; ++i)
            if (got[i] != 0xa5)
                return 3; // wrote past the struct
        env.close(static_cast<std::uint64_t>(fd));
        return 0;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

// ---------------------------------------------------------------------------
// New syscalls: pread/pwrite/dup2 through the shim
// ---------------------------------------------------------------------------

TEST(BatchSyscalls, PreadPwriteDup2UnderCloaking)
{
    System sys(config(true));
    auto r = run(sys, [](Env& env) {
        // Regular file: marshalled pread/pwrite must not move the file
        // offset.
        std::int64_t fd = env.open("/p.dat", os::openCreate |
                                                 os::openRead |
                                                     os::openWrite);
        GuestVA buf = env.allocPages(1);
        env.store64(buf, 0x1122334455667788ull);
        if (env.pwrite(static_cast<std::uint64_t>(fd), buf, 8, 100) != 8)
            return 1;
        env.store64(buf, 0);
        if (env.pread(static_cast<std::uint64_t>(fd), buf, 8, 100) != 8)
            return 2;
        if (env.load64(buf) != 0x1122334455667788ull)
            return 3;
        if (env.lseek(static_cast<std::uint64_t>(fd), 0, os::seekCur) !=
            0)
            return 4; // offset moved
        // dup2 onto a fresh slot aliases the descriptor.
        if (env.dup2(static_cast<std::uint64_t>(fd), 9) != 9)
            return 5;
        env.store64(buf, 0);
        if (env.pread(9, buf, 8, 100) != 8 ||
            env.load64(buf) != 0x1122334455667788ull)
            return 6;
        env.close(9);
        env.close(static_cast<std::uint64_t>(fd));

        // Protected file: emulated pread/pwrite, offset stays put and
        // pwrite past EOF grows the file.
        env.mkdir("/cloaked");
        std::int64_t pfd = env.open("/cloaked/p.dat",
                                    os::openCreate | os::openRead |
                                        os::openWrite);
        env.store64(buf, 0xdeadbeefcafef00dull);
        if (env.pwrite(static_cast<std::uint64_t>(pfd), buf, 8,
                       2 * pageSize) != 8)
            return 7;
        env.store64(buf, 0);
        if (env.pread(static_cast<std::uint64_t>(pfd), buf, 8,
                      2 * pageSize) != 8 ||
            env.load64(buf) != 0xdeadbeefcafef00dull)
            return 8;
        os::StatBuf sb{};
        env.fstat(static_cast<std::uint64_t>(pfd), sb);
        if (sb.size != 2 * pageSize + 8)
            return 9;
        if (env.lseek(static_cast<std::uint64_t>(pfd), 0,
                      os::seekCur) != 0)
            return 10;
        // dup2 over a protected fd would yank the emulated file out
        // from under the shim: refused.
        std::int64_t ofd = env.open("/p.dat", os::openRead);
        if (env.dup2(static_cast<std::uint64_t>(ofd),
                     static_cast<std::uint64_t>(pfd)) != -os::errInval)
            return 11;
        env.close(static_cast<std::uint64_t>(ofd));
        env.close(static_cast<std::uint64_t>(pfd));
        return 0;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

} // namespace
} // namespace osh
