/**
 * @file
 * Batched page-crypto API equivalence tests.
 *
 * The contract of CloakEngine::encryptPages / decryptPages /
 * sealPlaintextFrames is that batching is purely an amortization: the
 * bytes written, the metadata transitions (versions, IVs, hashes,
 * states), the victim-cache contents and the simulated cycles charged
 * are all identical to the equivalent per-page sequence. These tests
 * pin that down by running two identically-constructed harnesses side
 * by side — one batched, one sequential — and comparing everything
 * observable, including what happens when integrity verification
 * fails mid-batch.
 */

#include "cloak/engine.hh"
#include "sim/machine.hh"
#include "vmm/vcpu.hh"
#include "vmm/vmm.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

namespace osh::cloak
{
namespace
{

constexpr std::uint64_t numPages = 4;

/** Guest OS stub: fixed page tables, no fault handling. */
class FakeOs : public vmm::GuestOsHooks
{
  public:
    void
    map(Asid asid, GuestVA va, Gpa gpa)
    {
        ptes_[{asid, pageBase(va)}] =
            vmm::GuestPte{pageBase(gpa), true, true, true, false};
    }

    vmm::GuestPte
    translateGuest(Asid asid, GuestVA va) override
    {
        auto it = ptes_.find({asid, pageBase(va)});
        return it == ptes_.end() ? vmm::GuestPte{} : it->second;
    }

    void
    handleGuestPageFault(vmm::Vcpu&, GuestVA va, vmm::AccessType) override
    {
        throw vmm::ProcessKilled{
            0, formatString("unexpected guest fault at 0x%llx",
                            static_cast<unsigned long long>(va))};
    }

  private:
    std::map<std::pair<Asid, GuestVA>, vmm::GuestPte> ptes_;
};

/**
 * Machine + VMM + engine + one domain with a `numPages`-page cloaked
 * region. Two instances built with the same knobs share every seed, so
 * any divergence between them is caused by the operations applied, not
 * the environment.
 */
struct Harness
{
    explicit Harness(std::size_t victim_entries = 0)
        : machine(sim::MachineConfig{256, 7, {}, {}}), vmm(machine, 256),
          engine(vmm, 99, 64)
    {
        vmm.setGuestOs(&os);
        engine.setVictimCacheCapacity(victim_entries);
        domain = engine.createDomain(appAsid, 5,
                                     programIdentity("victim"));
        for (std::uint64_t i = 0; i < numPages; ++i) {
            os.map(appAsid, appVa + i * pageSize, gpa0 + i * pageSize);
            os.map(0, kernelVaOf(gpa0 + i * pageSize),
                   gpa0 + i * pageSize);
        }
        resource = engine.registerRegion(domain, appVa, numPages);
    }

    static GuestVA kernelVaOf(Gpa g) { return 0x800000000000ull + g; }

    vmm::Vcpu
    appCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{appAsid, domain, false});
    }

    vmm::Vcpu
    kernelCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{0, systemDomain, true});
    }

    /** Write one marker word into each page through the app's view. */
    void
    dirtyAll(std::uint64_t salt = 0)
    {
        auto app = appCpu();
        for (std::uint64_t i = 0; i < numPages; ++i)
            app.store64(appVa + i * pageSize, 0xfeed0000 + salt + i);
    }

    Resource&
    res()
    {
        Resource* r = engine.metadata().find(resource);
        EXPECT_NE(r, nullptr);
        return *r;
    }

    /** Work items covering all pages, metadata freshly looked up. */
    std::vector<PageCryptoItem>
    allItems()
    {
        Resource& r = res();
        std::vector<PageCryptoItem> items;
        for (std::uint64_t i = 0; i < numPages; ++i)
            items.push_back({i, &engine.metadata().page(r, i),
                             gpa0 + i * pageSize});
        return items;
    }

    std::vector<std::uint8_t>
    rawFrame(std::uint64_t page)
    {
        auto span = machine.memory().framePlain(
            vmm.pmap().translate(gpa0 + page * pageSize));
        return {span.begin(), span.end()};
    }

    static constexpr Asid appAsid = 5;
    static constexpr GuestVA appVa = 0x10000;
    static constexpr Gpa gpa0 = 0x3000;

    sim::Machine machine;
    vmm::Vmm vmm;
    CloakEngine engine;
    FakeOs os;
    DomainId domain = 0;
    ResourceId resource = 0;
};

/** Everything observable about one page after an operation. */
struct PageObservation
{
    std::vector<std::uint8_t> frame;
    PageState state;
    crypto::Iv iv;
    crypto::Digest hash;
    std::uint64_t version;

    bool
    operator==(const PageObservation& o) const
    {
        return frame == o.frame && state == o.state && iv == o.iv &&
               hash == o.hash && version == o.version;
    }
};

PageObservation
observe(Harness& h, std::uint64_t page)
{
    Resource& r = h.res();
    // Peek at the metadata map directly: no cache charge, so observing
    // never perturbs the cycle comparison.
    const PageMeta& meta = r.pages.at(page);
    return {h.rawFrame(page), meta.state, meta.iv, meta.hash,
            meta.version};
}

TEST(CryptoBatch, EncryptMatchesSequential)
{
    Harness batched, sequential;
    batched.dirtyAll();
    sequential.dirtyAll();

    auto bi = batched.allItems();
    batched.engine.encryptPages(batched.res(), bi);

    auto si = sequential.allItems();
    for (std::uint64_t i = 0; i < numPages; ++i)
        sequential.engine.encryptPages(
            sequential.res(),
            std::span<const PageCryptoItem>(&si[i], 1));

    for (std::uint64_t i = 0; i < numPages; ++i) {
        PageObservation b = observe(batched, i);
        EXPECT_EQ(b, observe(sequential, i)) << "page " << i;
        EXPECT_EQ(b.state, PageState::Encrypted);
        EXPECT_EQ(b.version, 1u);
    }
    EXPECT_EQ(batched.machine.cost().cycles(),
              sequential.machine.cost().cycles());
    EXPECT_EQ(batched.engine.stats().counter("batch_encrypt_pages").value(),
              numPages);
}

TEST(CryptoBatch, DecryptMatchesSequential)
{
    Harness batched, sequential;
    for (Harness* h : {&batched, &sequential}) {
        h->dirtyAll();
        auto items = h->allItems();
        h->engine.encryptPages(h->res(), items);
    }

    auto bi = batched.allItems();
    batched.engine.decryptPages(batched.res(), bi);

    auto si = sequential.allItems();
    for (std::uint64_t i = 0; i < numPages; ++i)
        sequential.engine.decryptPages(
            sequential.res(),
            std::span<const PageCryptoItem>(&si[i], 1));

    for (std::uint64_t i = 0; i < numPages; ++i) {
        PageObservation b = observe(batched, i);
        EXPECT_EQ(b, observe(sequential, i)) << "page " << i;
        EXPECT_EQ(b.state, PageState::PlaintextClean);
        // The marker the app wrote is back in plaintext.
        std::uint64_t word;
        std::memcpy(&word, b.frame.data(), sizeof(word));
        EXPECT_EQ(word, 0xfeed0000 + i);
    }
    EXPECT_EQ(batched.machine.cost().cycles(),
              sequential.machine.cost().cycles());
    // Decrypted pages are readable again through the app's view
    // without re-verification trouble.
    auto app = batched.appCpu();
    EXPECT_EQ(app.load64(Harness::appVa), 0xfeed0000u);
}

TEST(CryptoBatch, DirtyReencryptionBumpsVersionsAndIvs)
{
    Harness h;
    h.dirtyAll(0);
    auto items = h.allItems();
    h.engine.encryptPages(h.res(), items);
    std::vector<PageObservation> first;
    for (std::uint64_t i = 0; i < numPages; ++i)
        first.push_back(observe(h, i));

    // Fault the pages back in as writable and re-dirty them.
    h.dirtyAll(0x100);
    auto again = h.allItems();
    h.engine.encryptPages(h.res(), again);

    for (std::uint64_t i = 0; i < numPages; ++i) {
        PageObservation second = observe(h, i);
        EXPECT_EQ(second.version, 2u) << "page " << i;
        EXPECT_NE(second.iv, first[i].iv) << "page " << i;
        EXPECT_NE(second.hash, first[i].hash) << "page " << i;
        EXPECT_NE(second.frame, first[i].frame) << "page " << i;
    }
}

TEST(CryptoBatch, VictimCacheServesBatchedRoundTrips)
{
    Harness h(8);
    h.dirtyAll();
    auto items = h.allItems();
    h.engine.encryptPages(h.res(), items); // fills the victim cache

    auto back = h.allItems();
    h.engine.decryptPages(h.res(), back);
    EXPECT_EQ(h.engine.stats().counter("victim_decrypt_hits").value(),
              numPages);

    // Clean pages going back out: deterministic re-encryption served
    // from the cache, bytes identical to the first seal.
    std::vector<PageObservation> sealed;
    for (std::uint64_t i = 0; i < numPages; ++i)
        sealed.push_back(observe(h, i));
    auto out = h.allItems();
    h.engine.encryptPages(h.res(), out);
    EXPECT_EQ(h.engine.stats().counter("victim_reencrypt_hits").value(),
              numPages);
    for (std::uint64_t i = 0; i < numPages; ++i) {
        PageObservation o = observe(h, i);
        EXPECT_EQ(o.version, 1u);
        EXPECT_EQ(o.iv, sealed[i].iv);
        EXPECT_EQ(o.hash, sealed[i].hash);
    }
}

TEST(CryptoBatch, MidBatchTamperKillsProcess)
{
    Harness h;
    h.dirtyAll();
    auto items = h.allItems();
    h.engine.encryptPages(h.res(), items);

    // The kernel flips a byte in page 2's ciphertext.
    Mpa mpa = h.vmm.pmap().translate(Harness::gpa0 + 2 * pageSize);
    auto frame = h.machine.memory().framePlain(mpa);
    std::uint8_t tampered[8];
    std::memcpy(tampered, frame.data(), sizeof(tampered));
    tampered[0] ^= 0x01;
    h.machine.memory().write64(
        mpa, [&] {
            std::uint64_t w;
            std::memcpy(&w, tampered, sizeof(w));
            return w;
        }());

    auto batch = h.allItems();
    EXPECT_THROW(h.engine.decryptPages(h.res(), batch),
                 vmm::ProcessKilled);

    // Pages before the violation are plaintext, exactly as the
    // sequential loop would have left them; pages after it untouched.
    EXPECT_EQ(h.res().pages.at(0).state, PageState::PlaintextClean);
    EXPECT_EQ(h.res().pages.at(1).state, PageState::PlaintextClean);
    EXPECT_EQ(h.res().pages.at(2).state, PageState::Encrypted);
    EXPECT_EQ(h.res().pages.at(3).state, PageState::Encrypted);
    ASSERT_FALSE(h.engine.auditLog().empty());
    EXPECT_EQ(h.engine.auditLog().back().code,
              CloakError::IntegrityViolation);
    EXPECT_EQ(h.engine.auditLog().back().pageIndex, 2u);
}

TEST(CryptoBatch, SealPlaintextFramesMatchesFaultDrivenSeals)
{
    // The pre-seal hint and the fault-driven foreign-access seal must
    // produce identical ciphertext, metadata and total cycles.
    Harness hinted, faulted;
    hinted.dirtyAll();
    faulted.dirtyAll();

    std::vector<Gpa> gpas;
    for (std::uint64_t i = 0; i < numPages; ++i)
        gpas.push_back(Harness::gpa0 + i * pageSize);
    EXPECT_EQ(hinted.vmm.prepareFramesForKernel(gpas), numPages);
    auto hk = hinted.kernelCpu();
    for (std::uint64_t i = 0; i < numPages; ++i)
        hk.load64(Harness::kernelVaOf(Harness::gpa0 + i * pageSize));

    auto fk = faulted.kernelCpu();
    for (std::uint64_t i = 0; i < numPages; ++i)
        fk.load64(Harness::kernelVaOf(Harness::gpa0 + i * pageSize));

    for (std::uint64_t i = 0; i < numPages; ++i)
        EXPECT_EQ(observe(hinted, i), observe(faulted, i))
            << "page " << i;
    EXPECT_EQ(hinted.machine.cost().cycles(),
              faulted.machine.cost().cycles());
    EXPECT_EQ(hinted.engine.stats().counter("preseal_frames").value(),
              numPages);
    EXPECT_EQ(
        faulted.engine.stats().counter("foreign_plaintext_seals").value(),
        numPages);
}

TEST(CryptoBatch, SealPlaintextFramesIgnoresIrrelevantFrames)
{
    Harness h;
    h.dirtyAll();
    std::vector<Gpa> gpas;
    for (std::uint64_t i = 0; i < numPages; ++i)
        gpas.push_back(Harness::gpa0 + i * pageSize);
    // Uncloaked and out-of-range frames are silently skipped.
    gpas.push_back(0x8000);
    gpas.push_back(0x9000);
    EXPECT_EQ(h.vmm.prepareFramesForKernel(gpas), numPages);
    // A second hint finds everything already sealed: a no-op.
    Cycles before = h.machine.cost().cycles();
    EXPECT_EQ(h.vmm.prepareFramesForKernel(gpas), 0u);
    EXPECT_EQ(h.machine.cost().cycles(), before);
}

} // namespace
} // namespace osh::cloak
