/**
 * @file
 * Batched page-crypto API equivalence tests.
 *
 * The contract of CloakEngine::encryptPages / decryptPages /
 * sealPlaintextFrames is that batching is purely an amortization: the
 * bytes written, the metadata transitions (versions, IVs, hashes,
 * states), the victim-cache contents and the simulated cycles charged
 * are all identical to the equivalent per-page sequence. These tests
 * pin that down by running two identically-constructed harnesses side
 * by side — one batched, one sequential — and comparing everything
 * observable, including what happens when integrity verification
 * fails mid-batch.
 *
 * The same contract extends to the crypto worker pool: workers=N is
 * purely a host-side speedup, so the Parallel* tests compare a
 * multi-lane engine against a serial one and require byte-, cycle-
 * and trace-identical results.
 */

#include "cloak/engine.hh"
#include "sim/machine.hh"
#include "trace/trace.hh"
#include "vmm/vcpu.hh"
#include "vmm/vmm.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

namespace osh::cloak
{
namespace
{

constexpr std::uint64_t numPages = 4;

/** Guest OS stub: fixed page tables, no fault handling. */
class FakeOs : public vmm::GuestOsHooks
{
  public:
    void
    map(Asid asid, GuestVA va, Gpa gpa)
    {
        ptes_[{asid, pageBase(va)}] =
            vmm::GuestPte{pageBase(gpa), true, true, true, false};
    }

    vmm::GuestPte
    translateGuest(Asid asid, GuestVA va) override
    {
        auto it = ptes_.find({asid, pageBase(va)});
        return it == ptes_.end() ? vmm::GuestPte{} : it->second;
    }

    void
    handleGuestPageFault(vmm::Vcpu&, GuestVA va, vmm::AccessType) override
    {
        throw vmm::ProcessKilled{
            0, formatString("unexpected guest fault at 0x%llx",
                            static_cast<unsigned long long>(va))};
    }

  private:
    std::map<std::pair<Asid, GuestVA>, vmm::GuestPte> ptes_;
};

/**
 * Machine + VMM + engine + one domain with a `numPages`-page cloaked
 * region. Two instances built with the same knobs share every seed, so
 * any divergence between them is caused by the operations applied, not
 * the environment.
 */
struct Harness
{
    explicit Harness(std::size_t victim_entries = 0,
                     bool tracing = false)
        : machine(sim::MachineConfig{
              256, 7, {}, trace::TraceConfig{tracing, 1 << 12}}),
          vmm(machine, 256), engine(vmm, 99, 64)
    {
        vmm.setGuestOs(&os);
        engine.setVictimCacheCapacity(victim_entries);
        domain = engine.createDomain(appAsid, 5,
                                     programIdentity("victim"));
        for (std::uint64_t i = 0; i < numPages; ++i) {
            os.map(appAsid, appVa + i * pageSize, gpa0 + i * pageSize);
            os.map(0, kernelVaOf(gpa0 + i * pageSize),
                   gpa0 + i * pageSize);
        }
        resource = engine.registerRegion(domain, appVa, numPages);
    }

    static GuestVA kernelVaOf(Gpa g) { return 0x800000000000ull + g; }

    vmm::Vcpu
    appCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{appAsid, domain, false});
    }

    vmm::Vcpu
    kernelCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{0, systemDomain, true});
    }

    /** Write one marker word into each page through the app's view. */
    void
    dirtyAll(std::uint64_t salt = 0)
    {
        auto app = appCpu();
        for (std::uint64_t i = 0; i < numPages; ++i)
            app.store64(appVa + i * pageSize, 0xfeed0000 + salt + i);
    }

    Resource&
    res()
    {
        Resource* r = engine.metadata().lookup(resource).valueOr(nullptr);
        EXPECT_NE(r, nullptr);
        return *r;
    }

    /** Work items covering all pages, metadata freshly looked up. */
    std::vector<PageCryptoItem>
    allItems()
    {
        Resource& r = res();
        std::vector<PageCryptoItem> items;
        for (std::uint64_t i = 0; i < numPages; ++i)
            items.push_back({i, &engine.metadata().page(r, i),
                             gpa0 + i * pageSize});
        return items;
    }

    std::vector<std::uint8_t>
    rawFrame(std::uint64_t page)
    {
        auto span = machine.memory().framePlain(
            vmm.pmap().translate(gpa0 + page * pageSize));
        return {span.begin(), span.end()};
    }

    static constexpr Asid appAsid = 5;
    static constexpr GuestVA appVa = 0x10000;
    static constexpr Gpa gpa0 = 0x3000;

    sim::Machine machine;
    vmm::Vmm vmm;
    CloakEngine engine;
    FakeOs os;
    DomainId domain = 0;
    ResourceId resource = 0;
};

/** Everything observable about one page after an operation. */
struct PageObservation
{
    std::vector<std::uint8_t> frame;
    PageState state;
    crypto::Iv iv;
    crypto::Digest hash;
    std::uint64_t version;

    bool
    operator==(const PageObservation& o) const
    {
        return frame == o.frame && state == o.state && iv == o.iv &&
               hash == o.hash && version == o.version;
    }
};

PageObservation
observe(Harness& h, std::uint64_t page)
{
    Resource& r = h.res();
    // Peek at the metadata map directly: no cache charge, so observing
    // never perturbs the cycle comparison.
    const PageMeta& meta = r.pages.at(page);
    return {h.rawFrame(page), meta.state, meta.iv, meta.hash,
            meta.version};
}

TEST(CryptoBatch, EncryptMatchesSequential)
{
    Harness batched, sequential;
    batched.dirtyAll();
    sequential.dirtyAll();

    auto bi = batched.allItems();
    batched.engine.encryptPages(batched.res(), bi);

    auto si = sequential.allItems();
    for (std::uint64_t i = 0; i < numPages; ++i)
        sequential.engine.encryptPages(
            sequential.res(),
            std::span<const PageCryptoItem>(&si[i], 1));

    for (std::uint64_t i = 0; i < numPages; ++i) {
        PageObservation b = observe(batched, i);
        EXPECT_EQ(b, observe(sequential, i)) << "page " << i;
        EXPECT_EQ(b.state, PageState::Encrypted);
        EXPECT_EQ(b.version, 1u);
    }
    EXPECT_EQ(batched.machine.cost().cycles(),
              sequential.machine.cost().cycles());
    EXPECT_EQ(batched.engine.stats().counter("batch_encrypt_pages").value(),
              numPages);
}

TEST(CryptoBatch, DecryptMatchesSequential)
{
    Harness batched, sequential;
    for (Harness* h : {&batched, &sequential}) {
        h->dirtyAll();
        auto items = h->allItems();
        h->engine.encryptPages(h->res(), items);
    }

    auto bi = batched.allItems();
    batched.engine.decryptPages(batched.res(), bi);

    auto si = sequential.allItems();
    for (std::uint64_t i = 0; i < numPages; ++i)
        sequential.engine.decryptPages(
            sequential.res(),
            std::span<const PageCryptoItem>(&si[i], 1));

    for (std::uint64_t i = 0; i < numPages; ++i) {
        PageObservation b = observe(batched, i);
        EXPECT_EQ(b, observe(sequential, i)) << "page " << i;
        EXPECT_EQ(b.state, PageState::PlaintextClean);
        // The marker the app wrote is back in plaintext.
        std::uint64_t word;
        std::memcpy(&word, b.frame.data(), sizeof(word));
        EXPECT_EQ(word, 0xfeed0000 + i);
    }
    EXPECT_EQ(batched.machine.cost().cycles(),
              sequential.machine.cost().cycles());
    // Decrypted pages are readable again through the app's view
    // without re-verification trouble.
    auto app = batched.appCpu();
    EXPECT_EQ(app.load64(Harness::appVa), 0xfeed0000u);
}

TEST(CryptoBatch, DirtyReencryptionBumpsVersionsAndIvs)
{
    Harness h;
    h.dirtyAll(0);
    auto items = h.allItems();
    h.engine.encryptPages(h.res(), items);
    std::vector<PageObservation> first;
    for (std::uint64_t i = 0; i < numPages; ++i)
        first.push_back(observe(h, i));

    // Fault the pages back in as writable and re-dirty them.
    h.dirtyAll(0x100);
    auto again = h.allItems();
    h.engine.encryptPages(h.res(), again);

    for (std::uint64_t i = 0; i < numPages; ++i) {
        PageObservation second = observe(h, i);
        EXPECT_EQ(second.version, 2u) << "page " << i;
        EXPECT_NE(second.iv, first[i].iv) << "page " << i;
        EXPECT_NE(second.hash, first[i].hash) << "page " << i;
        EXPECT_NE(second.frame, first[i].frame) << "page " << i;
    }
}

TEST(CryptoBatch, VictimCacheServesBatchedRoundTrips)
{
    Harness h(8);
    h.dirtyAll();
    auto items = h.allItems();
    h.engine.encryptPages(h.res(), items); // fills the victim cache

    auto back = h.allItems();
    h.engine.decryptPages(h.res(), back);
    EXPECT_EQ(h.engine.stats().counter("victim_decrypt_hits").value(),
              numPages);

    // Clean pages going back out: deterministic re-encryption served
    // from the cache, bytes identical to the first seal.
    std::vector<PageObservation> sealed;
    for (std::uint64_t i = 0; i < numPages; ++i)
        sealed.push_back(observe(h, i));
    auto out = h.allItems();
    h.engine.encryptPages(h.res(), out);
    EXPECT_EQ(h.engine.stats().counter("victim_reencrypt_hits").value(),
              numPages);
    for (std::uint64_t i = 0; i < numPages; ++i) {
        PageObservation o = observe(h, i);
        EXPECT_EQ(o.version, 1u);
        EXPECT_EQ(o.iv, sealed[i].iv);
        EXPECT_EQ(o.hash, sealed[i].hash);
    }
}

TEST(CryptoBatch, MidBatchTamperKillsProcess)
{
    Harness h;
    h.dirtyAll();
    auto items = h.allItems();
    h.engine.encryptPages(h.res(), items);

    // The kernel flips a byte in page 2's ciphertext.
    Mpa mpa = h.vmm.pmap().translate(Harness::gpa0 + 2 * pageSize);
    auto frame = h.machine.memory().framePlain(mpa);
    std::uint8_t tampered[8];
    std::memcpy(tampered, frame.data(), sizeof(tampered));
    tampered[0] ^= 0x01;
    h.machine.memory().write64(
        mpa, [&] {
            std::uint64_t w;
            std::memcpy(&w, tampered, sizeof(w));
            return w;
        }());

    auto batch = h.allItems();
    EXPECT_THROW(h.engine.decryptPages(h.res(), batch),
                 vmm::ProcessKilled);

    // Pages before the violation are plaintext, exactly as the
    // sequential loop would have left them; pages after it untouched.
    EXPECT_EQ(h.res().pages.at(0).state, PageState::PlaintextClean);
    EXPECT_EQ(h.res().pages.at(1).state, PageState::PlaintextClean);
    EXPECT_EQ(h.res().pages.at(2).state, PageState::Encrypted);
    EXPECT_EQ(h.res().pages.at(3).state, PageState::Encrypted);
    ASSERT_FALSE(h.engine.auditLog().empty());
    EXPECT_EQ(h.engine.auditLog().back().code,
              CloakError::IntegrityViolation);
    EXPECT_EQ(h.engine.auditLog().back().pageIndex, 2u);
}

TEST(CryptoBatch, SealPlaintextFramesMatchesFaultDrivenSeals)
{
    // The pre-seal hint and the fault-driven foreign-access seal must
    // produce identical ciphertext, metadata and total cycles.
    Harness hinted, faulted;
    hinted.dirtyAll();
    faulted.dirtyAll();

    std::vector<Gpa> gpas;
    for (std::uint64_t i = 0; i < numPages; ++i)
        gpas.push_back(Harness::gpa0 + i * pageSize);
    EXPECT_EQ(hinted.vmm.prepareFramesForKernel(gpas), numPages);
    auto hk = hinted.kernelCpu();
    for (std::uint64_t i = 0; i < numPages; ++i)
        hk.load64(Harness::kernelVaOf(Harness::gpa0 + i * pageSize));

    auto fk = faulted.kernelCpu();
    for (std::uint64_t i = 0; i < numPages; ++i)
        fk.load64(Harness::kernelVaOf(Harness::gpa0 + i * pageSize));

    for (std::uint64_t i = 0; i < numPages; ++i)
        EXPECT_EQ(observe(hinted, i), observe(faulted, i))
            << "page " << i;
    EXPECT_EQ(hinted.machine.cost().cycles(),
              faulted.machine.cost().cycles());
    EXPECT_EQ(hinted.engine.stats().counter("preseal_frames").value(),
              numPages);
    EXPECT_EQ(
        faulted.engine.stats().counter("foreign_plaintext_seals").value(),
        numPages);
}

/**
 * Field-by-field trace comparison. Event order matters: the parallel
 * merge must flush events in submission order, so the rings have to be
 * identical streams, not just equal multisets.
 */
void
expectTracesEqual(const Harness& parallel, const Harness& serial)
{
    auto pe = parallel.machine.tracer().buffer().snapshot();
    auto se = serial.machine.tracer().buffer().snapshot();
    ASSERT_EQ(pe.size(), se.size());
    for (std::size_t i = 0; i < pe.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "event " << i);
        EXPECT_EQ(pe[i].category, se[i].category);
        EXPECT_STREQ(pe[i].name, se[i].name);
        EXPECT_EQ(pe[i].domain, se[i].domain);
        EXPECT_EQ(pe[i].pid, se[i].pid);
        EXPECT_EQ(pe[i].begin, se[i].begin);
        EXPECT_EQ(pe[i].end, se[i].end);
        EXPECT_EQ(pe[i].arg0, se[i].arg0);
        EXPECT_EQ(pe[i].arg1, se[i].arg1);
    }
}

TEST(CryptoBatch, ParallelEncryptMatchesSerial)
{
    Harness parallel(0, true), serial(0, true);
    parallel.engine.setCryptoWorkers(8);
    ASSERT_EQ(parallel.engine.cryptoWorkers(), 8u);
    ASSERT_EQ(serial.engine.cryptoWorkers(), 1u);

    parallel.dirtyAll();
    serial.dirtyAll();

    auto pi = parallel.allItems();
    parallel.engine.encryptPages(parallel.res(), pi);
    auto si = serial.allItems();
    serial.engine.encryptPages(serial.res(), si);

    for (std::uint64_t i = 0; i < numPages; ++i)
        EXPECT_EQ(observe(parallel, i), observe(serial, i))
            << "page " << i;
    EXPECT_EQ(parallel.machine.cost().cycles(),
              serial.machine.cost().cycles());
    expectTracesEqual(parallel, serial);
}

TEST(CryptoBatch, ParallelDecryptMatchesSerial)
{
    Harness parallel(0, true), serial(0, true);
    parallel.engine.setCryptoWorkers(8);
    for (Harness* h : {&parallel, &serial}) {
        h->dirtyAll();
        auto items = h->allItems();
        h->engine.encryptPages(h->res(), items);
    }

    auto pi = parallel.allItems();
    parallel.engine.decryptPages(parallel.res(), pi);
    auto si = serial.allItems();
    serial.engine.decryptPages(serial.res(), si);

    for (std::uint64_t i = 0; i < numPages; ++i) {
        PageObservation p = observe(parallel, i);
        EXPECT_EQ(p, observe(serial, i)) << "page " << i;
        EXPECT_EQ(p.state, PageState::PlaintextClean);
        std::uint64_t word;
        std::memcpy(&word, p.frame.data(), sizeof(word));
        EXPECT_EQ(word, 0xfeed0000 + i);
    }
    EXPECT_EQ(parallel.machine.cost().cycles(),
              serial.machine.cost().cycles());
    expectTracesEqual(parallel, serial);
}

TEST(CryptoBatch, ParallelVictimCacheHitsMatchSerial)
{
    // Victim-cache capacity (8) below 2 * numPages keeps LRU eviction
    // order load-bearing: any reordering of finds/inserts between the
    // lanes would change which entries survive and the hit counters.
    Harness parallel(8, true), serial(8, true);
    parallel.engine.setCryptoWorkers(8);

    for (Harness* h : {&parallel, &serial}) {
        h->dirtyAll();
        auto seal = h->allItems();
        h->engine.encryptPages(h->res(), seal);
        auto back = h->allItems();
        h->engine.decryptPages(h->res(), back);
        auto out = h->allItems();
        h->engine.encryptPages(h->res(), out);
    }

    for (const char* counter :
         {"victim_decrypt_hits", "victim_reencrypt_hits",
          "clean_reencrypts", "page_encrypts", "page_decrypts"}) {
        EXPECT_EQ(parallel.engine.stats().counter(counter).value(),
                  serial.engine.stats().counter(counter).value())
            << counter;
    }
    for (std::uint64_t i = 0; i < numPages; ++i)
        EXPECT_EQ(observe(parallel, i), observe(serial, i))
            << "page " << i;
    EXPECT_EQ(parallel.machine.cost().cycles(),
              serial.machine.cost().cycles());
    expectTracesEqual(parallel, serial);
}

TEST(CryptoBatch, ParallelMidBatchTamperMatchesSerial)
{
    Harness parallel(0, true), serial(0, true);
    parallel.engine.setCryptoWorkers(8);

    for (Harness* h : {&parallel, &serial}) {
        h->dirtyAll();
        auto items = h->allItems();
        h->engine.encryptPages(h->res(), items);
        Mpa mpa = h->vmm.pmap().translate(Harness::gpa0 + 2 * pageSize);
        auto frame = h->machine.memory().framePlain(mpa);
        std::uint64_t w;
        std::memcpy(&w, frame.data(), sizeof(w));
        h->machine.memory().write64(mpa, w ^ 0x01);

        auto batch = h->allItems();
        EXPECT_THROW(h->engine.decryptPages(h->res(), batch),
                     vmm::ProcessKilled);
    }

    // The abort point is identical: earlier pages decrypted, the
    // tampered page and everything after it untouched, same audit
    // entry, same cycles charged up to the kill.
    for (std::uint64_t i = 0; i < numPages; ++i)
        EXPECT_EQ(observe(parallel, i), observe(serial, i))
            << "page " << i;
    EXPECT_EQ(parallel.res().pages.at(2).state, PageState::Encrypted);
    ASSERT_FALSE(parallel.engine.auditLog().empty());
    ASSERT_FALSE(serial.engine.auditLog().empty());
    EXPECT_EQ(parallel.engine.auditLog().back().code,
              serial.engine.auditLog().back().code);
    EXPECT_EQ(parallel.engine.auditLog().back().pageIndex,
              serial.engine.auditLog().back().pageIndex);
    EXPECT_EQ(parallel.machine.cost().cycles(),
              serial.machine.cost().cycles());
    expectTracesEqual(parallel, serial);
}

TEST(CryptoBatch, SealPlaintextFramesIgnoresIrrelevantFrames)
{
    Harness h;
    h.dirtyAll();
    std::vector<Gpa> gpas;
    for (std::uint64_t i = 0; i < numPages; ++i)
        gpas.push_back(Harness::gpa0 + i * pageSize);
    // Uncloaked and out-of-range frames are silently skipped.
    gpas.push_back(0x8000);
    gpas.push_back(0x9000);
    EXPECT_EQ(h.vmm.prepareFramesForKernel(gpas), numPages);
    // A second hint finds everything already sealed: a no-op.
    Cycles before = h.machine.cost().cycles();
    EXPECT_EQ(h.vmm.prepareFramesForKernel(gpas), 0u);
    EXPECT_EQ(h.machine.cost().cycles(), before);
}

} // namespace
} // namespace osh::cloak
