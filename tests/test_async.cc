/**
 * @file
 * Async re-encryption pipeline + incremental (chunked) page integrity
 * tests: enqueue semantics (double buffering, scrubbed hand-back,
 * FIFO retirement, stall accounting), guest-visible invariance across
 * queue depths, the ≥5× eviction critical-path win, chunked tamper
 * detection and flat/chunked equivalence, checkpoint interaction
 * (drain-first; typed refusal under chunked integrity), the
 * leak-oracle staging scan, builder validation, and scheduler reaping
 * at System teardown.
 */

#include "attack/campaign.hh"
#include "attack/director.hh"
#include "attack/points.hh"
#include "base/bytes.hh"
#include "cloak/engine.hh"
#include "migrate/checkpoint.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "system/system.hh"
#include "vmm/vcpu.hh"
#include "vmm/vmm.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace osh
{
namespace
{

using attack::AttackPoint;
using attack::CampaignCell;
using migrate::MigrateError;
using system::System;
using system::SystemConfig;

// --- engine-level rig ------------------------------------------------

/** Guest OS stub: fixed page tables, no fault handling. */
class FakeOs : public vmm::GuestOsHooks
{
  public:
    void
    map(Asid asid, GuestVA va, Gpa gpa)
    {
        ptes_[{asid, pageBase(va)}] =
            vmm::GuestPte{pageBase(gpa), true, true, true, false};
    }

    vmm::GuestPte
    translateGuest(Asid asid, GuestVA va) override
    {
        auto it = ptes_.find({asid, pageBase(va)});
        return it == ptes_.end() ? vmm::GuestPte{} : it->second;
    }

    void
    handleGuestPageFault(vmm::Vcpu&, GuestVA va, vmm::AccessType) override
    {
        throw vmm::ProcessKilled{
            0, formatString("unexpected guest fault at 0x%llx",
                            static_cast<unsigned long long>(va))};
    }

  private:
    std::map<std::pair<Asid, GuestVA>, vmm::GuestPte> ptes_;
};

/**
 * Machine + VMM + engine + fake OS + one domain with a small region.
 * A plain struct (not a fixture) so one test can instantiate several
 * rigs — e.g. a flat and a chunked engine fed identical accesses.
 */
struct Rig
{
    explicit Rig(std::size_t async_depth = 0, bool chunked = false)
        : machine(sim::MachineConfig{256, 7, {}, {}}), vmm(machine, 256),
          engine(vmm, 99, 64)
    {
        vmm.setGuestOs(&os);
        engine.setAsyncEvictDepth(async_depth);
        engine.setChunkedIntegrity(chunked);
        domain = engine.createDomain(appAsid, 5,
                                     cloak::programIdentity("victim"));
        for (std::uint64_t i = 0; i < regionPages; ++i) {
            os.map(appAsid, appVa + i * pageSize, gpa + i * pageSize);
            os.map(kernelAsid, kernelVaOf(gpa + i * pageSize),
                   gpa + i * pageSize);
        }
        resource = engine.registerRegion(domain, appVa, regionPages);
    }

    static GuestVA kernelVaOf(Gpa g) { return 0x800000000000ull + g; }

    vmm::Vcpu
    appCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{appAsid, domain, false});
    }

    vmm::Vcpu
    kernelCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{kernelAsid, systemDomain, true});
    }

    std::vector<std::uint8_t>
    rawFrame(Gpa g)
    {
        auto span = machine.memory().framePlain(vmm.pmap().translate(g));
        return {span.begin(), span.end()};
    }

    Cycles cycles() { return machine.cost().cycles(); }

    static constexpr Asid appAsid = 5;
    static constexpr Asid kernelAsid = 0;
    static constexpr GuestVA appVa = 0x10000;
    static constexpr Gpa gpa = 0x3000;
    static constexpr std::uint64_t regionPages = 4;

    sim::Machine machine;
    vmm::Vmm vmm;
    cloak::CloakEngine engine;
    FakeOs os;
    DomainId domain = 0;
    ResourceId resource = 0;
};

bool
allZero(std::span<const std::uint8_t> bytes)
{
    for (std::uint8_t b : bytes)
        if (b != 0)
            return false;
    return true;
}

TEST(AsyncEvict, DepthZeroRefusesEnqueue)
{
    Rig rig(0);
    auto app = rig.appCpu();
    app.store64(Rig::appVa, 0x5ec7e7);
    EXPECT_FALSE(rig.engine.evictPageAsync(
        Rig::gpa, [](std::span<const std::uint8_t>) {}));
    EXPECT_EQ(rig.engine.stats().value("async_evictions"), 0u);
}

TEST(AsyncEvict, EnqueueScrubsFrameAndStagesSealedImage)
{
    Rig rig(4);
    auto app = rig.appCpu();
    app.store64(Rig::appVa, 0xfeedbeef);

    std::vector<std::uint8_t> committed;
    ASSERT_TRUE(rig.engine.evictPageAsync(
        Rig::gpa, [&committed](std::span<const std::uint8_t> sealed) {
            committed.assign(sealed.begin(), sealed.end());
        }));

    // Double buffering: the frame goes back scrubbed, the ciphertext
    // waits in staging, the commit has not run yet.
    EXPECT_TRUE(allZero(rig.rawFrame(Rig::gpa)));
    ASSERT_EQ(rig.engine.asyncPendingEvictions(), 1u);
    EXPECT_TRUE(committed.empty());
    const cloak::AsyncSealEntry& entry =
        rig.engine.asyncPendingEntries().front();
    EXPECT_FALSE(allZero(entry.sealed));

    // Drain: the guest stalls until the background lane (crypto + the
    // swap-slot disk write) finishes, then the commit sees the sealed
    // bytes and the staging copy is scrubbed.
    Cycles before = rig.cycles();
    rig.vmm.drainAsyncEvictions();
    EXPECT_GE(rig.cycles() - before,
              rig.machine.cost().params().diskAccess);
    EXPECT_EQ(rig.engine.asyncPendingEvictions(), 0u);
    ASSERT_EQ(committed.size(), pageSize);
    EXPECT_FALSE(allZero(committed));
    EXPECT_EQ(rig.engine.stats().value("async_evict_commits"), 1u);
    EXPECT_EQ(rig.engine.stats().value("async_evict_stalls"), 1u);
}

TEST(AsyncEvict, SealedBytesIdenticalToSynchronousPath)
{
    // Same seed, same access sequence: the async seal must draw the
    // same IV and produce byte-identical ciphertext + metadata as the
    // synchronous eviction would.
    Rig sync(0);
    {
        auto app = sync.appCpu();
        auto kernel = sync.kernelCpu();
        app.store64(Rig::appVa, 0x0badf00d);
        kernel.load64(Rig::kernelVaOf(Rig::gpa)); // sync seal in place
    }

    Rig async(4);
    std::vector<std::uint8_t> committed;
    {
        auto app = async.appCpu();
        app.store64(Rig::appVa, 0x0badf00d);
        ASSERT_TRUE(async.engine.evictPageAsync(
            Rig::gpa, [&committed](std::span<const std::uint8_t> s) {
                committed.assign(s.begin(), s.end());
            }));
        async.vmm.drainAsyncEvictions();
    }
    EXPECT_EQ(committed, sync.rawFrame(Rig::gpa));
}

TEST(AsyncEvict, QueueFullRetiresOldestInFifoOrder)
{
    Rig rig(2);
    auto app = rig.appCpu();
    std::vector<std::uint64_t> order;
    for (std::uint64_t i = 0; i < 3; ++i) {
        app.store64(Rig::appVa + i * pageSize, i + 1);
        ASSERT_TRUE(rig.engine.evictPageAsync(
            Rig::gpa + i * pageSize,
            [&order, i](std::span<const std::uint8_t>) {
                order.push_back(i);
            }));
    }
    // Depth 2: the third enqueue had to retire the first entry.
    EXPECT_EQ(rig.engine.asyncPendingEvictions(), 2u);
    EXPECT_EQ(order, (std::vector<std::uint64_t>{0}));
    rig.vmm.drainAsyncEvictions();
    EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(AsyncEvict, EnqueueCriticalPathAtLeastFiveTimesCheaper)
{
    // Synchronous eviction critical path: the kernel touch pays the
    // full dirty-page seal inline.
    Rig sync(0);
    Cycles sync_cost = 0;
    {
        auto app = sync.appCpu();
        auto kernel = sync.kernelCpu();
        app.store64(Rig::appVa, 1);
        Cycles before = sync.cycles();
        kernel.load64(Rig::kernelVaOf(Rig::gpa));
        sync_cost = sync.cycles() - before;
    }

    // Async eviction critical path: snapshot + scrub + fixed cost.
    Rig async(4);
    Cycles async_cost = 0;
    {
        auto app = async.appCpu();
        app.store64(Rig::appVa, 1);
        Cycles before = async.cycles();
        ASSERT_TRUE(async.engine.evictPageAsync(
            Rig::gpa, [](std::span<const std::uint8_t>) {}));
        async_cost = async.cycles() - before;
    }
    EXPECT_GE(sync_cost, 5 * async_cost)
        << "sync=" << sync_cost << " async=" << async_cost;
}

// --- chunked (incremental) integrity ---------------------------------

TEST(ChunkedIntegrity, RoundTripMatchesFlatPath)
{
    Rig flat(0, false);
    Rig chunked(0, true);
    for (Rig* rig : {&flat, &chunked}) {
        auto app = rig->appCpu();
        auto kernel = rig->kernelCpu();
        app.store64(Rig::appVa, 0xabcdef01);
        std::uint64_t kview = kernel.load64(Rig::kernelVaOf(Rig::gpa));
        EXPECT_NE(kview, 0xabcdef01u); // ciphertext in the kernel view
        EXPECT_EQ(app.load64(Rig::appVa), 0xabcdef01u);
    }
    EXPECT_EQ(chunked.engine.stats().value("chunk_encrypts"), 1u);
    EXPECT_EQ(chunked.engine.stats().value("chunk_decrypts"), 1u);
    EXPECT_EQ(flat.engine.stats().value("chunk_encrypts"), 0u);
}

TEST(ChunkedIntegrity, TamperedChunkIsDetected)
{
    Rig rig(0, true);
    auto app = rig.appCpu();
    auto kernel = rig.kernelCpu();
    app.store64(Rig::appVa, 42);
    kernel.load64(Rig::kernelVaOf(Rig::gpa)); // chunked seal
    // Tamper one byte in chunk 5 of the ciphertext image.
    kernel.store64(Rig::kernelVaOf(Rig::gpa) + 5 * cloak::chunkSize + 8,
                   0x666);
    EXPECT_THROW(app.load64(Rig::appVa), vmm::ProcessKilled);
    EXPECT_EQ(rig.engine.stats().value("violations"), 1u);
    ASSERT_FALSE(rig.engine.auditLog().empty());
}

TEST(ChunkedIntegrity, SmallWriteRemacsOnlyTouchedChunks)
{
    Rig flat(0, false);
    Rig chunked(0, true);
    auto reseal_cost = [](Rig& rig) {
        auto app = rig.appCpu();
        auto kernel = rig.kernelCpu();
        app.store64(Rig::appVa, 1);
        kernel.load64(Rig::kernelVaOf(Rig::gpa)); // first (full) seal
        app.store64(Rig::appVa, 2);               // dirty 8 bytes
        Cycles before = rig.cycles();
        kernel.load64(Rig::kernelVaOf(Rig::gpa)); // re-seal
        return rig.cycles() - before;
    };
    Cycles flat_cost = reseal_cost(flat);
    Cycles chunked_cost = reseal_cost(chunked);
    EXPECT_GE(flat_cost, 5 * chunked_cost)
        << "flat=" << flat_cost << " chunked=" << chunked_cost;
    // The 8-byte store dirtied exactly one 256-byte chunk.
    EXPECT_EQ(chunked.engine.stats().value("chunk_dirty_chunks"),
              cloak::chunksPerPage + 1);
}

// --- system-level invariance -----------------------------------------

struct PagingObs
{
    int status = 0;
    std::string checksum;
    std::uint64_t swapIns = 0;
    std::uint64_t pageEncrypts = 0;
    std::uint64_t pageDecrypts = 0;
    std::uint64_t asyncEvictions = 0;
    Cycles cycles = 0;
};

PagingObs
runPaging(std::size_t depth, bool chunked = false)
{
    auto cfg = SystemConfig::Builder{}
                   .seed(7)
                   .guestFrames(240)
                   .cloaking(true)
                   .asyncEvictDepth(depth)
                   .chunkedIntegrity(chunked)
                   .build();
    System sys(cfg);
    workloads::registerAll(sys);
    auto r = sys.runProgram("wl.memstress", {"256", "3", "1"});
    PagingObs obs;
    obs.status = r.status;
    obs.checksum = workloads::resultOf(sys, "wl.memstress");
    obs.swapIns = sys.kernel().stats().value("swap_ins");
    obs.pageEncrypts = sys.cloak()->stats().value("page_encrypts");
    obs.pageDecrypts = sys.cloak()->stats().value("page_decrypts");
    obs.asyncEvictions = sys.cloak()->stats().value("async_evictions");
    obs.cycles = sys.cycles();
    return obs;
}

TEST(AsyncSystem, PagingWorkloadIsDepthInvariant)
{
    PagingObs d0 = runPaging(0);
    ASSERT_EQ(d0.status, 0);
    ASSERT_FALSE(d0.checksum.empty());
    EXPECT_EQ(d0.asyncEvictions, 0u);

    for (std::size_t depth : {4u, 64u}) {
        PagingObs dn = runPaging(depth);
        // Guest-visible results are byte-identical at any depth…
        EXPECT_EQ(dn.status, d0.status) << "depth " << depth;
        EXPECT_EQ(dn.checksum, d0.checksum) << "depth " << depth;
        EXPECT_EQ(dn.swapIns, d0.swapIns) << "depth " << depth;
        EXPECT_EQ(dn.pageEncrypts, d0.pageEncrypts) << "depth " << depth;
        EXPECT_EQ(dn.pageDecrypts, d0.pageDecrypts) << "depth " << depth;
        // …while the pipeline actually engaged and saved cycles.
        EXPECT_GT(dn.asyncEvictions, 0u) << "depth " << depth;
        EXPECT_LT(dn.cycles, d0.cycles) << "depth " << depth;
    }
}

TEST(AsyncSystem, ChunkedIntegrityPreservesWorkloadResults)
{
    PagingObs flat = runPaging(0, false);
    PagingObs chunked = runPaging(0, true);
    EXPECT_EQ(chunked.status, flat.status);
    EXPECT_EQ(chunked.checksum, flat.checksum);
    EXPECT_EQ(chunked.swapIns, flat.swapIns);
}

TEST(AsyncSystem, RunIsDeterministicAtFixedDepth)
{
    PagingObs a = runPaging(4);
    PagingObs b = runPaging(4);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.asyncEvictions, b.asyncEvictions);
}

// --- checkpoint interaction ------------------------------------------

/** Launch + park the victim; asserts the freeze landed. */
Pid
launchFrozen(System& sys, const std::string& workload,
             std::uint64_t entries)
{
    Pid pid = sys.launch(workload);
    sys.kernel().requestFreeze(pid, entries);
    sys.run();
    EXPECT_TRUE(sys.kernel().isFrozen(pid));
    return pid;
}

/** Kill + thaw + run a frozen victim so teardown sees no live threads. */
void
abandonVictim(System& sys, Pid pid)
{
    os::Process* proc = sys.kernel().findProcess(pid);
    ASSERT_NE(proc, nullptr);
    proc->killRequested = true;
    proc->killReason = "test done";
    sys.kernel().thaw(pid);
    sys.run();
}

TEST(AsyncCheckpoint, CheckpointDrainsPendingEvictionsFirst)
{
    auto cfg = SystemConfig::Builder{}
                   .seed(5)
                   .guestFrames(96)
                   .cloaking(true)
                   .asyncEvictDepth(8)
                   .build();
    System sys(cfg);
    workloads::registerAll(sys);
    Pid pid = launchFrozen(sys, "wl.victim.paging", 6);

    // Plant a pending eviction by hand (the freeze path drains, so a
    // frozen victim has an empty queue): evict the first cloaked
    // plaintext frame. The no-op commit bypasses the kernel's swap
    // write, so this only pins drain *ordering*, not image replay.
    bool committed = false;
    bool planted = false;
    for (Gpa g = 0; g < 96 * pageSize && !planted; g += pageSize)
        planted = sys.cloak()->evictPageAsync(
            g, [&committed](std::span<const std::uint8_t>) {
                committed = true;
            });
    ASSERT_TRUE(planted);
    ASSERT_EQ(sys.cloak()->asyncPendingEvictions(), 1u);

    auto cp = migrate::checkpoint(sys, pid);
    ASSERT_TRUE(cp.ok());
    EXPECT_TRUE(committed);
    EXPECT_EQ(sys.cloak()->asyncPendingEvictions(), 0u);
    abandonVictim(sys, pid);
}

TEST(AsyncCheckpoint, ChunkedIntegrityCheckpointRefusedTyped)
{
    auto cfg = SystemConfig::Builder{}
                   .seed(5)
                   .cloaking(true)
                   .chunkedIntegrity(true)
                   .build();
    System sys(cfg);
    workloads::registerAll(sys);
    Pid pid = launchFrozen(sys, "wl.victim.compute", 4);

    auto cp = migrate::checkpoint(sys, pid);
    ASSERT_FALSE(cp.ok());
    EXPECT_EQ(cp.error(), MigrateError::UnsupportedState);
    abandonVictim(sys, pid);
}

// --- leak oracle -----------------------------------------------------

TEST(AsyncOracle, FindsSentinelPlantedInStagingBuffer)
{
    auto cfg = SystemConfig::Builder{}
                   .seed(9)
                   .guestFrames(96)
                   .cloaking(true)
                   .asyncEvictDepth(8)
                   .build();
    System sys(cfg);
    workloads::registerAll(sys);
    attack::DirectorConfig dcfg;
    dcfg.point = AttackPoint::Baseline;
    dcfg.seed = cfg.effectiveAttackSeed();
    attack::AttackDirector director(sys, dcfg);

    Pid pid = launchFrozen(sys, "wl.victim.paging", 6);

    bool planted = false;
    for (Gpa g = 0; g < 96 * pageSize && !planted; g += pageSize)
        planted = sys.cloak()->evictPageAsync(
            g, [](std::span<const std::uint8_t>) {});
    ASSERT_TRUE(planted);

    // A sentinel no workload uses: the correctly sealed staging buffer
    // holds ciphertext, so the scan is clean…
    const std::uint64_t sentinel = 0xfeedfacecafebeefull;
    EXPECT_TRUE(
        attack::findSentinelLeak(sys, director, sentinel).empty());

    // …until plaintext is planted into staging (modelling a seal bug);
    // then the oracle must name the staging surface. Staging is
    // read-only to tests, so cast the const away for the plant.
    auto& entry = const_cast<cloak::AsyncSealEntry&>(
        sys.cloak()->asyncPendingEntries().front());
    storeLe64(entry.sealed.data() + 128, sentinel);
    std::string leak = attack::findSentinelLeak(sys, director, sentinel);
    ASSERT_FALSE(leak.empty());
    EXPECT_NE(leak.find("staging"), std::string::npos) << leak;
    abandonVictim(sys, pid);
}

// --- campaign verdict parity -----------------------------------------

TEST(AsyncCampaign, SwapAttackVerdictsDepthInvariant)
{
    for (AttackPoint p :
         {AttackPoint::Baseline, AttackPoint::SwapTamperByte,
          AttackPoint::SwapReplay, AttackPoint::SwapResurrect}) {
        CampaignCell d0 =
            attack::runCell(1, p, "wl.victim.paging", 0, 0);
        CampaignCell d4 =
            attack::runCell(1, p, "wl.victim.paging", 0, 4);
        EXPECT_EQ(d4.verdict, d0.verdict)
            << attack::attackPointName(p);
        EXPECT_EQ(d4.detail, d0.detail) << attack::attackPointName(p);
        EXPECT_EQ(d4.status, d0.status) << attack::attackPointName(p);
        EXPECT_EQ(d4.killed, d0.killed) << attack::attackPointName(p);
    }
}

// --- builder validation & teardown reaping ---------------------------

TEST(AsyncConfig, BuilderValidatesDepthAndChunking)
{
    EXPECT_THROW(SystemConfig::Builder{}
                     .cloaking(true)
                     .asyncEvictDepth(257)
                     .build(),
                 std::invalid_argument);
    EXPECT_THROW(SystemConfig::Builder{}
                     .cloaking(false)
                     .asyncEvictDepth(1)
                     .build(),
                 std::invalid_argument);
    EXPECT_THROW(SystemConfig::Builder{}
                     .cloaking(false)
                     .chunkedIntegrity(true)
                     .build(),
                 std::invalid_argument);
    auto cfg = SystemConfig::Builder{}
                   .cloaking(true)
                   .asyncEvictDepth(256)
                   .chunkedIntegrity(true)
                   .build();
    EXPECT_EQ(cfg.asyncEvictDepth, 256u);
    EXPECT_TRUE(cfg.chunkedIntegrity);
}

TEST(SchedulerReap, SystemRunReapsFinishedHostThreads)
{
    auto cfg = SystemConfig::Builder{}.seed(3).cloaking(true).build();
    System sys(cfg);
    workloads::registerAll(sys);

    // Drive the scheduler directly: finished guest threads keep their
    // host threads until someone reaps.
    sys.launch("wl.victim.compute");
    sys.sched().run();
    std::size_t joinable = sys.sched().joinableFinishedThreads();
    EXPECT_GT(joinable, 0u);
    EXPECT_EQ(sys.sched().reapFinished(), joinable);
    EXPECT_EQ(sys.sched().joinableFinishedThreads(), 0u);
    EXPECT_EQ(sys.sched().reapFinished(), 0u);

    // System::run() reaps on the way out: no joinable stragglers.
    sys.launch("wl.victim.compute");
    sys.run();
    EXPECT_EQ(sys.sched().joinableFinishedThreads(), 0u);
}

} // namespace
} // namespace osh
