/**
 * @file
 * Attack-campaign matrix tests: the hostile-OS campaign (src/attack)
 * must classify every attack-point × victim-workload × seed cell as
 * Detected or Harmless — never Leak (sentinel oracle hit) and never
 * Crash (silent corruption, non-cloak kill, or osh_panic). Also folds
 * in the legacy MaliceConfig knob matrix, proves the leak oracle
 * actually finds planted plaintext, and pins campaign determinism.
 */

#include "attack/campaign.hh"
#include "attack/director.hh"
#include "attack/points.hh"
#include "os/env.hh"
#include "os/kernel.hh"
#include "os/layout.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

namespace osh::attack
{
namespace
{

using system::System;
using system::SystemConfig;

std::string
cellName(const CampaignCell& c)
{
    return "seed=" + std::to_string(c.seed) + " point=" +
           attackPointName(c.point) + " workload=" + c.workload +
           " detail=[" + c.detail + "]";
}

/** The full 3-seed sweep, run once and shared across tests. */
class CampaignMatrix : public ::testing::Test
{
  protected:
    static const CampaignReport&
    report()
    {
        static const CampaignReport r = runCampaign(CampaignConfig{});
        return r;
    }

    static const CampaignCell&
    cell(std::uint64_t seed, AttackPoint point, const std::string& wl)
    {
        for (const CampaignCell& c : report().cells) {
            if (c.seed == seed && c.point == point && c.workload == wl)
                return c;
        }
        throw std::logic_error("campaign cell missing: " +
                               std::string(attackPointName(point)) +
                               " x " + wl);
    }
};

TEST_F(CampaignMatrix, NeverLeaksOrCrashes)
{
    const CampaignReport& r = report();
    ASSERT_EQ(r.cells.size(),
              3 * allAttackPoints().size() *
                  workloads::victimNames().size());
    for (const CampaignCell& c : r.cells) {
        EXPECT_NE(c.verdict, Verdict::Leak) << cellName(c);
        EXPECT_NE(c.verdict, Verdict::Crash) << cellName(c);
    }
    EXPECT_TRUE(r.clean());
}

/** Any tampering attack that actually fired must have been caught —
 *  a fired tamper that goes unnoticed is an integrity hole even if
 *  the victim happened to exit cleanly. */
TEST_F(CampaignMatrix, FiredTamperingIsAlwaysDetected)
{
    for (const CampaignCell& c : report().cells) {
        if (isTamperPoint(c.point) && c.firings > 0) {
            EXPECT_EQ(c.verdict, Verdict::Detected) << cellName(c);
        }
    }
}

/** The matrix has teeth: each tamper family must fire AND be detected
 *  on the workload built to exercise its injection point. */
TEST_F(CampaignMatrix, EveryTamperFamilyFiresAndIsDetected)
{
    const std::uint64_t seed = 1;

    // Swap-path attacks need a victim that actually swaps.
    for (AttackPoint p :
         {AttackPoint::SwapTamperByte, AttackPoint::SwapTamperPage,
          AttackPoint::SwapReplay, AttackPoint::SwapResurrect}) {
        const CampaignCell& c = cell(seed, p, "wl.victim.paging");
        EXPECT_GT(c.firings, 0u) << cellName(c);
        EXPECT_EQ(c.verdict, Verdict::Detected) << cellName(c);
    }

    // Sealed-metadata attacks need a victim with protected files.
    for (AttackPoint p :
         {AttackPoint::SealCorrupt, AttackPoint::SealTruncate,
          AttackPoint::SealRollback}) {
        const CampaignCell& c = cell(seed, p, "wl.victim.fileio");
        EXPECT_GT(c.firings, 0u) << cellName(c);
        EXPECT_EQ(c.verdict, Verdict::Detected) << cellName(c);
    }

    // Direct memory scribbles and shadow-table lies hit every victim.
    for (AttackPoint p :
         {AttackPoint::SyscallScribble, AttackPoint::ShadowRemap,
          AttackPoint::ShadowDoubleMap}) {
        for (const std::string& wl : workloads::victimNames()) {
            const CampaignCell& c = cell(seed, p, wl);
            EXPECT_GT(c.firings, 0u) << cellName(c);
            EXPECT_EQ(c.verdict, Verdict::Detected) << cellName(c);
        }
    }

    // Migration-transport attacks need a victim that speaks the
    // cooperative-resume protocol (compute and paging do).
    for (AttackPoint p :
         {AttackPoint::MigImageTamper, AttackPoint::MigImageRollback,
          AttackPoint::MigStreamReplay,
          AttackPoint::MigManifestTrunc}) {
        for (const char* wl : {"wl.victim.compute", "wl.victim.paging"}) {
            const CampaignCell& c = cell(seed, p, wl);
            EXPECT_GT(c.firings, 0u) << cellName(c);
            EXPECT_EQ(c.verdict, Verdict::Detected) << cellName(c);
        }
    }
}

/** Probe attacks only ever observe ciphertext or scrubbed registers:
 *  they must complete without tripping the victim. */
TEST_F(CampaignMatrix, ProbesFireButStayHarmless)
{
    for (const std::string& wl : workloads::victimNames()) {
        const CampaignCell& snoop =
            cell(1, AttackPoint::SyscallSnoop, wl);
        EXPECT_GT(snoop.firings, 0u) << cellName(snoop);
        EXPECT_EQ(snoop.verdict, Verdict::Harmless) << cellName(snoop);

        const CampaignCell& trap =
            cell(1, AttackPoint::TrapFrameProbe, wl);
        EXPECT_GT(trap.firings, 0u) << cellName(trap);
        EXPECT_EQ(trap.verdict, Verdict::Harmless) << cellName(trap);
    }

    // read() corruption of unprotected data is conceded by the threat
    // model: the fileio victim reads a public file and must tolerate
    // junk in it.
    const CampaignCell& rc =
        cell(1, AttackPoint::ReadCorrupt, "wl.victim.fileio");
    EXPECT_GT(rc.firings, 0u) << cellName(rc);
    EXPECT_EQ(rc.verdict, Verdict::Harmless) << cellName(rc);
}

TEST_F(CampaignMatrix, BaselineIsAlwaysHarmless)
{
    for (const CampaignCell& c : report().cells) {
        if (c.point != AttackPoint::Baseline)
            continue;
        EXPECT_EQ(c.verdict, Verdict::Harmless) << cellName(c);
        EXPECT_EQ(c.firings, 0u) << cellName(c);
        EXPECT_FALSE(c.killed) << cellName(c);
    }
}

TEST(AttackCampaign, SameSeedGivesIdenticalVerdictTable)
{
    CampaignConfig cfg;
    cfg.seeds = {7};
    cfg.points = {AttackPoint::SwapTamperPage, AttackPoint::SealRollback,
                  AttackPoint::SyscallScribble, AttackPoint::ShadowRemap};
    const std::string first = runCampaign(cfg).table();
    const std::string second = runCampaign(cfg).table();
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("DETECTED"), std::string::npos);
}

TEST(AttackCampaign, ConfigValidationRejectsNonsense)
{
    {
        CampaignConfig cfg;
        cfg.seeds = {};
        EXPECT_THROW(runCampaign(cfg), std::invalid_argument);
    }
    {
        CampaignConfig cfg;
        cfg.seeds = {1, 1};
        EXPECT_THROW(runCampaign(cfg), std::invalid_argument);
    }
    {
        CampaignConfig cfg;
        cfg.workloads = {"wl.victim.compute", "wl.victim.compute"};
        EXPECT_THROW(runCampaign(cfg), std::invalid_argument);
    }
    {
        CampaignConfig cfg;
        cfg.workloads = {"wl.no.such.victim"};
        EXPECT_THROW(runCampaign(cfg), std::invalid_argument);
    }
    {
        CampaignConfig cfg;
        cfg.points = {AttackPoint::Baseline, AttackPoint::Baseline};
        EXPECT_THROW(runCampaign(cfg), std::invalid_argument);
    }
}

TEST(AttackCampaign, AttackSeedMustNotAliasWorkloadSeed)
{
    EXPECT_THROW(SystemConfig::Builder{}.seed(5).attackSeed(5).build(),
                 std::invalid_argument);
    SystemConfig cfg = SystemConfig::Builder{}.seed(5).build();
    EXPECT_NE(cfg.effectiveAttackSeed(), cfg.seed);
    SystemConfig explicit_cfg =
        SystemConfig::Builder{}.seed(5).attackSeed(99).build();
    EXPECT_EQ(explicit_cfg.effectiveAttackSeed(), 99u);
}

/** The oracle must actually find plaintext when it IS kernel-visible —
 *  otherwise "zero LEAK verdicts" proves nothing. Plant the sentinel
 *  in a public (unprotected) file from an uncloaked program and check
 *  the scan reports it. */
TEST(LeakOracle, FindsPlantedSentinel)
{
    const std::uint64_t seed = 11;
    SystemConfig cfg = SystemConfig::Builder{}
                           .seed(seed)
                           .guestFrames(256)
                           .cloaking(true)
                           .build();
    System sys(cfg);
    workloads::registerAll(sys);

    DirectorConfig dcfg;
    dcfg.point = AttackPoint::Baseline;
    dcfg.seed = cfg.effectiveAttackSeed();
    AttackDirector director(sys, dcfg);

    const std::uint64_t sentinel = workloads::attackSentinel(seed);
    EXPECT_TRUE(findSentinelLeak(sys, director, sentinel).empty());

    sys.addProgram("leaker", os::Program{
        [sentinel](os::Env& env) {
            GuestVA buf = env.allocPages(1);
            env.store64(buf, sentinel);
            int fd = env.open("/public_leak",
                              os::openCreate | os::openWrite);
            if (fd < 0)
                return 1;
            if (env.write(fd, buf, 8) != 8)
                return 2;
            env.close(fd);
            return 0;
        },
        false, 16});
    ASSERT_EQ(sys.runProgram("leaker").status, 0);

    // The uncloaked leaker's plaintext is now kernel-visible twice
    // over: in the un-scrubbed machine frame it wrote through, and in
    // the public file's disk image. The scan reports the first surface
    // it hits; any hit proves the oracle has teeth.
    std::string leak = findSentinelLeak(sys, director, sentinel);
    EXPECT_FALSE(leak.empty());
    EXPECT_TRUE(leak.find("machine frame") != std::string::npos ||
                leak.find("vfs inode") != std::string::npos)
        << leak;
}

/**
 * Legacy MaliceConfig knob matrix: every knob × every victim workload
 * must end in a clean exit, a refused protected-file open, or a
 * graceful cloak-violation kill — never silent corruption
 * (victimStatusCorrupt), never a non-cloak kill, never a panic.
 */
class LegacyMalice
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(LegacyMalice, KnobNeverSilentlyCorrupts)
{
    const auto& [knob, workload] = GetParam();

    bool paging = workload == "wl.victim.paging";
    SystemConfig cfg = SystemConfig::Builder{}
                           .seed(3)
                           .guestFrames(paging ? 96 : 512)
                           .cloaking(true)
                           .build();
    System sys(cfg);
    workloads::registerAll(sys);

    os::MaliceConfig& m = sys.kernel().malice();
    if (knob == "snoop") {
        m.snoopUserMemory = true;
        m.snoopVa = os::mmapBase;
    } else if (knob == "scribble") {
        m.scribbleUserMemory = true;
        m.snoopVa = os::mmapBase;
    } else if (knob == "tamper_swap") {
        m.tamperSwap = true;
    } else if (knob == "replay_swap") {
        m.replaySwap = true;
    } else if (knob == "corrupt_read") {
        m.corruptReadBuffers = true;
    } else if (knob == "trap_frames") {
        m.recordTrapFrames = true;
    } else {
        FAIL() << "unknown knob " << knob;
    }

    system::ExitResult init = sys.runProgram(workload);

    bool violation_kill = false;
    for (const auto& [pid, res] : sys.results()) {
        if (!res.killed)
            continue;
        EXPECT_EQ(res.killReason.rfind("cloak violation", 0), 0u)
            << "non-cloak kill under " << knob << " x " << workload
            << ": " << res.killReason;
        violation_kill = true;
    }

    bool acceptable = violation_kill || init.status == 0 ||
                      init.status == workloads::victimStatusRefused;
    EXPECT_TRUE(acceptable)
        << knob << " x " << workload << " exited " << init.status
        << " (killed=" << init.killed << " reason=" << init.killReason
        << ")";
    EXPECT_NE(init.status, workloads::victimStatusCorrupt)
        << knob << " x " << workload
        << ": victim observed silent corruption";

    // Whatever the hostile kernel recorded, it holds no plaintext.
    const std::uint64_t sentinel = workloads::attackSentinel(3);
    for (const auto& bytes : m.snoopedData) {
        std::uint64_t v = 0;
        for (std::size_t off = 0; off + 8 <= bytes.size(); off += 8) {
            std::memcpy(&v, bytes.data() + off, 8);
            EXPECT_NE(v, sentinel);
        }
    }
    for (const vmm::RegisterFile& regs : m.trapFrames) {
        for (std::uint64_t g : regs.gpr)
            EXPECT_NE(g, sentinel);
    }
}

INSTANTIATE_TEST_SUITE_P(
    KnobMatrix, LegacyMalice,
    ::testing::Combine(
        ::testing::Values("snoop", "scribble", "tamper_swap",
                          "replay_swap", "corrupt_read", "trap_frames"),
        ::testing::ValuesIn(workloads::victimNames())),
    [](const auto& info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param);
        for (char& c : name)
            if (c == '.')
                c = '_';
        return name;
    });

} // namespace
} // namespace osh::attack
