/**
 * @file
 * Crypto validation against published test vectors:
 *   - AES-128: FIPS-197 appendix B/C and NIST SP 800-38A.
 *   - AES-CTR: NIST SP 800-38A F.5.1.
 *   - SHA-256: FIPS 180-4 / NIST CAVP short messages.
 *   - HMAC-SHA256: RFC 4231.
 * Plus property tests (round trips, incrementality) and KeyManager
 * behaviour.
 */

#include "base/bytes.hh"
#include "base/rng.hh"
#include "crypto/aes.hh"
#include "crypto/ctr.hh"
#include "crypto/hmac.hh"
#include "crypto/keys.hh"
#include "crypto/sha256.hh"

#include <gtest/gtest.h>

namespace osh::crypto
{
namespace
{

AesKey
keyFromHex(const std::string& hex)
{
    auto v = fromHex(hex);
    AesKey k{};
    std::copy(v.begin(), v.end(), k.begin());
    return k;
}

TEST(Aes, Fips197VectorEncrypt)
{
    // FIPS-197 appendix C.1.
    Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    auto pt = fromHex("00112233445566778899aabbccddeeff");
    std::uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(toHex(std::span<const std::uint8_t>(ct, 16)),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197VectorDecrypt)
{
    Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    auto ct = fromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    std::uint8_t pt[16];
    aes.decryptBlock(ct.data(), pt);
    EXPECT_EQ(toHex(std::span<const std::uint8_t>(pt, 16)),
              "00112233445566778899aabbccddeeff");
}

TEST(Aes, Sp80038aEcbVectors)
{
    // NIST SP 800-38A F.1.1 (ECB-AES128.Encrypt), first two blocks.
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    struct { const char* pt; const char* ct; } cases[] = {
        {"6bc1bee22e409f96e93d7e117393172a",
         "3ad77bb40d7a3660a89ecaf32466ef97"},
        {"ae2d8a571e03ac9c9eb76fac45af8e51",
         "f5d3d58503b9699de785895a96fdbaaf"},
        {"30c81c46a35ce411e5fbc1191a0a52ef",
         "43b1cd7f598ece23881b00e3ed030688"},
        {"f69f2445df4f9b17ad2b417be66c3710",
         "7b0c785e27e8ad3f8223207104725dd4"},
    };
    for (const auto& c : cases) {
        auto pt = fromHex(c.pt);
        std::uint8_t ct[16];
        aes.encryptBlock(pt.data(), ct);
        EXPECT_EQ(toHex(std::span<const std::uint8_t>(ct, 16)), c.ct);
        std::uint8_t back[16];
        aes.decryptBlock(ct, back);
        EXPECT_EQ(toHex(std::span<const std::uint8_t>(back, 16)), c.pt);
    }
}

TEST(Aes, EncryptDecryptRoundTripRandom)
{
    Rng rng(123);
    for (int trial = 0; trial < 50; ++trial) {
        AesKey key;
        rng.fill(key);
        Aes128 aes(key);
        AesBlock pt, ct, back;
        rng.fill(pt);
        aes.encryptBlock(pt.data(), ct.data());
        aes.decryptBlock(ct.data(), back.data());
        EXPECT_EQ(pt, back);
        EXPECT_NE(pt, ct);
    }
}

TEST(Aes, InPlaceAliasedBuffers)
{
    Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    auto buf = fromHex("00112233445566778899aabbccddeeff");
    aes.encryptBlock(buf.data(), buf.data());
    EXPECT_EQ(toHex(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
    aes.decryptBlock(buf.data(), buf.data());
    EXPECT_EQ(toHex(buf), "00112233445566778899aabbccddeeff");
}

TEST(Aes, ReferencePathMatchesFips197)
{
    // The byte-wise reference path is always callable, whatever the
    // dispatch mode — the differential anchor for the T-table kernel.
    Aes128 aes(keyFromHex("000102030405060708090a0b0c0d0e0f"));
    auto pt = fromHex("00112233445566778899aabbccddeeff");
    std::uint8_t ct[16];
    aes.encryptBlockReference(pt.data(), ct);
    EXPECT_EQ(toHex(std::span<const std::uint8_t>(ct, 16)),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, ReferenceModePassesSp80038aVectors)
{
    // The NIST ECB vectors must hold on both encrypt kernels.
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    aes.setReferenceMode(true);
    EXPECT_TRUE(aes.referenceMode());
    auto pt = fromHex("6bc1bee22e409f96e93d7e117393172a");
    std::uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(toHex(std::span<const std::uint8_t>(ct, 16)),
              "3ad77bb40d7a3660a89ecaf32466ef97");
    aes.setReferenceMode(false);
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(toHex(std::span<const std::uint8_t>(ct, 16)),
              "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes, TtableMatchesReferenceRandom)
{
    Rng rng(2026);
    for (int trial = 0; trial < 1000; ++trial) {
        AesKey key;
        rng.fill(key);
        Aes128 aes(key);
        AesBlock pt, fast, ref;
        rng.fill(pt);
        aes.encryptBlock(pt.data(), fast.data());
        aes.encryptBlockReference(pt.data(), ref.data());
        ASSERT_EQ(fast, ref) << "trial " << trial;
        AesBlock back;
        aes.decryptBlock(fast.data(), back.data());
        ASSERT_EQ(back, pt) << "trial " << trial;
    }
}

TEST(Aes, EncryptBlocksMatchesPerBlock)
{
    Rng rng(404);
    AesKey key;
    rng.fill(key);
    Aes128 aes(key);
    for (std::size_t nblocks : {1u, 2u, 3u, 7u, 8u, 9u, 16u, 256u}) {
        std::vector<std::uint8_t> in(nblocks * aesBlockSize);
        rng.fill(in);
        std::vector<std::uint8_t> bulk(in.size());
        aes.encryptBlocks(in.data(), bulk.data(), nblocks);
        std::vector<std::uint8_t> single(in.size());
        for (std::size_t b = 0; b < nblocks; ++b)
            aes.encryptBlock(in.data() + b * aesBlockSize,
                             single.data() + b * aesBlockSize);
        EXPECT_EQ(bulk, single) << nblocks << " blocks";
        // Aliased in/out must give the same result.
        std::vector<std::uint8_t> aliased(in);
        aes.encryptBlocks(aliased.data(), aliased.data(), nblocks);
        EXPECT_EQ(aliased, bulk) << nblocks << " blocks aliased";
    }
}

TEST(Aes, BulkInterleavedMatchesSingleBlockRandom)
{
    // 1000 random cases: the four-lane interleaved bulk kernel must be
    // byte-identical to the per-block T-table and reference kernels at
    // every block count, including the <4-block tail.
    Rng rng(0xb41c);
    for (int trial = 0; trial < 1000; ++trial) {
        AesKey key;
        rng.fill(key);
        Aes128 bulk(key);
        Aes128 single(key);
        single.setBulkMode(false);
        EXPECT_TRUE(bulk.bulkMode());
        EXPECT_FALSE(single.bulkMode());
        std::size_t nblocks = 1 + static_cast<std::size_t>(
                                      rng.nextBounded(13));
        std::vector<std::uint8_t> in(nblocks * aesBlockSize);
        rng.fill(in);
        std::vector<std::uint8_t> a(in.size()), b(in.size()),
            r(in.size());
        bulk.encryptBlocks(in.data(), a.data(), nblocks);
        single.encryptBlocks(in.data(), b.data(), nblocks);
        for (std::size_t blk = 0; blk < nblocks; ++blk)
            bulk.encryptBlockReference(in.data() + blk * aesBlockSize,
                                       r.data() + blk * aesBlockSize);
        ASSERT_EQ(a, b) << "trial " << trial << " blocks " << nblocks;
        ASSERT_EQ(a, r) << "trial " << trial << " blocks " << nblocks;
    }
}

TEST(Ctr, Sp80038aF511)
{
    // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt.
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Iv iv;
    auto ivv = fromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    std::copy(ivv.begin(), ivv.end(), iv.begin());

    auto pt = fromHex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710");
    std::vector<std::uint8_t> ct(pt.size());
    aesCtrXcrypt(aes, iv, pt, ct);
    EXPECT_EQ(toHex(ct),
              "874d6191b620e3261bef6864990db6ce"
              "9806f66b7970fdff8617187bb9fffdff"
              "5ae4df3edbd5d35e5b4f09020db03eab"
              "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(Ctr, Sp80038aF511ReferenceMode)
{
    // The same NIST CTR vector driven end-to-end through the byte-wise
    // reference encrypt path.
    Aes128 aes(keyFromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    aes.setReferenceMode(true);
    Iv iv;
    auto ivv = fromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    std::copy(ivv.begin(), ivv.end(), iv.begin());
    auto pt = fromHex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710");
    std::vector<std::uint8_t> ct(pt.size());
    aesCtrXcrypt(aes, iv, pt, ct);
    EXPECT_EQ(toHex(ct),
              "874d6191b620e3261bef6864990db6ce"
              "9806f66b7970fdff8617187bb9fffdff"
              "5ae4df3edbd5d35e5b4f09020db03eab"
              "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(Ctr, DifferentialOptimizedVsReference)
{
    // 1000 random (key, IV, length, offset) cases: the batched T-table
    // CTR pipeline must produce byte-identical output to the byte-wise
    // reference kernel, including unaligned buffers and lengths that
    // are not multiples of the batch or block size.
    Rng rng(0xd1ff);
    std::vector<std::uint8_t> arena(4096 + 64);
    for (int trial = 0; trial < 1000; ++trial) {
        AesKey key;
        rng.fill(key);
        Aes128 opt(key);
        Aes128 ref(key);
        ref.setReferenceMode(true);
        Iv iv;
        rng.fill(iv);
        std::size_t offset = static_cast<std::size_t>(rng.nextBounded(64));
        std::size_t len = static_cast<std::size_t>(rng.nextBounded(trial % 10 == 0 ? 4097 : 301));
        rng.fill(std::span<std::uint8_t>(arena.data() + offset, len));
        std::span<const std::uint8_t> pt(arena.data() + offset, len);
        std::vector<std::uint8_t> a(len), b(len);
        aesCtrXcrypt(opt, iv, pt, a);
        aesCtrXcrypt(ref, iv, pt, b);
        ASSERT_EQ(a, b) << "trial " << trial << " len " << len
                        << " offset " << offset;
    }
}

TEST(Ctr, RoundTripArbitraryLengths)
{
    Rng rng(77);
    AesKey key;
    rng.fill(key);
    Aes128 aes(key);
    for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
        std::vector<std::uint8_t> pt(len);
        rng.fill(pt);
        Iv iv;
        rng.fill(iv);
        std::vector<std::uint8_t> ct(pt);
        aesCtrXcryptInPlace(aes, iv, ct);
        if (len >= 16) {
            EXPECT_NE(pt, ct);
        }
        aesCtrXcryptInPlace(aes, iv, ct);
        EXPECT_EQ(pt, ct);
    }
}

TEST(Ctr, DifferentIvsGiveDifferentCiphertext)
{
    Rng rng(9);
    AesKey key;
    rng.fill(key);
    Aes128 aes(key);
    std::vector<std::uint8_t> pt(64, 0xaa);
    Iv iv1{}, iv2{};
    iv2[15] = 1;
    std::vector<std::uint8_t> c1(pt), c2(pt);
    aesCtrXcryptInPlace(aes, iv1, c1);
    aesCtrXcryptInPlace(aes, iv2, c2);
    EXPECT_NE(c1, c2);
}

TEST(Ctr, CounterCarryPropagates)
{
    // IV ending in ff..ff must carry into higher counter bytes rather
    // than repeating the keystream block.
    AesKey key{};
    Aes128 aes(key);
    Iv iv{};
    for (int i = 8; i < 16; ++i)
        iv[static_cast<std::size_t>(i)] = 0xff;
    std::vector<std::uint8_t> zeros(48, 0);
    std::vector<std::uint8_t> ks(48);
    aesCtrXcrypt(aes, iv, zeros, ks);
    // Keystream blocks must be pairwise distinct.
    EXPECT_NE(std::vector<std::uint8_t>(ks.begin(), ks.begin() + 16),
              std::vector<std::uint8_t>(ks.begin() + 16, ks.begin() + 32));
    EXPECT_NE(std::vector<std::uint8_t>(ks.begin() + 16, ks.begin() + 32),
              std::vector<std::uint8_t>(ks.begin() + 32, ks.end()));
}

TEST(Sha256, Fips180Vectors)
{
    struct { const char* msg; const char* digest; } cases[] = {
        {"",
         "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        {"abc",
         "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
         "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    };
    for (const auto& c : cases) {
        Sha256 ctx;
        ctx.update(std::string(c.msg));
        EXPECT_EQ(toHex(ctx.final()), c.digest);
    }
}

TEST(Sha256, MillionAs)
{
    // FIPS 180-4: one million repetitions of 'a'.
    Sha256 ctx;
    std::vector<std::uint8_t> chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        ctx.update(chunk);
    EXPECT_EQ(toHex(ctx.final()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, FastCompressionMatchesReferenceRandom)
{
    // 1000 random (length, content) cases: the unrolled rolling-
    // schedule compression must match the plain FIPS 180-4 loop,
    // across block boundaries and the padding tail.
    Rng rng(0x5a25);
    ASSERT_FALSE(Sha256::referenceCompression());
    for (int trial = 0; trial < 1000; ++trial) {
        std::size_t len = static_cast<std::size_t>(
            rng.nextBounded(trial % 10 == 0 ? 4097 : 300));
        std::vector<std::uint8_t> data(len);
        rng.fill(data);
        Digest fast = Sha256::hash(data);
        Sha256::setReferenceCompression(true);
        Digest ref = Sha256::hash(data);
        Sha256::setReferenceCompression(false);
        ASSERT_EQ(fast, ref) << "trial " << trial << " len " << len;
    }
}

TEST(Sha256, ReferenceCompressionPassesFipsVectors)
{
    Sha256::setReferenceCompression(true);
    Sha256 ctx;
    ctx.update(std::string("abc"));
    Digest d = ctx.final();
    Sha256::setReferenceCompression(false);
    EXPECT_EQ(toHex(d),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f2"
              "0015ad");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    Rng rng(31);
    std::vector<std::uint8_t> data(1000);
    rng.fill(data);
    Digest oneshot = Sha256::hash(data);
    // Split at many odd boundaries.
    for (std::size_t split : {1u, 7u, 63u, 64u, 65u, 500u, 999u}) {
        Sha256 ctx;
        ctx.update(std::span<const std::uint8_t>(data.data(), split));
        ctx.update(std::span<const std::uint8_t>(data.data() + split,
                                                 data.size() - split));
        EXPECT_EQ(ctx.final(), oneshot);
    }
}

TEST(Hmac, Rfc4231Case1)
{
    std::vector<std::uint8_t> key(20, 0x0b);
    std::string msg = "Hi There";
    auto mac = hmacSha256(key, std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
    EXPECT_EQ(toHex(mac),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2)
{
    std::string key = "Jefe";
    std::string msg = "what do ya want for nothing?";
    auto mac = hmacSha256(
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
    EXPECT_EQ(toHex(mac),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3)
{
    std::vector<std::uint8_t> key(20, 0xaa);
    std::vector<std::uint8_t> msg(50, 0xdd);
    auto mac = hmacSha256(key, msg);
    EXPECT_EQ(toHex(mac),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey)
{
    // Key longer than the block size must be hashed first.
    std::vector<std::uint8_t> key(131, 0xaa);
    std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
    auto mac = hmacSha256(key, std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
    EXPECT_EQ(toHex(mac),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, MidstateMatchesOneShotRfc4231)
{
    // Every RFC 4231 vector must hold through the prepared-key
    // midstate path and the streaming context as well.
    struct { std::vector<std::uint8_t> key, msg; const char* mac; } cases[] = {
        {std::vector<std::uint8_t>(20, 0x0b),
         {'H', 'i', ' ', 'T', 'h', 'e', 'r', 'e'},
         "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
        {{'J', 'e', 'f', 'e'},
         {'w', 'h', 'a', 't', ' ', 'd', 'o', ' ', 'y', 'a', ' ', 'w',
          'a', 'n', 't', ' ', 'f', 'o', 'r', ' ', 'n', 'o', 't', 'h',
          'i', 'n', 'g', '?'},
         "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
        {std::vector<std::uint8_t>(20, 0xaa),
         std::vector<std::uint8_t>(50, 0xdd),
         "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
    };
    for (const auto& c : cases) {
        HmacKey prepared{std::span<const std::uint8_t>(c.key)};
        EXPECT_EQ(toHex(hmacSha256(prepared, c.msg)), c.mac);
        HmacSha256 ctx(prepared);
        for (std::uint8_t byte : c.msg)
            ctx.update(std::span<const std::uint8_t>(&byte, 1));
        EXPECT_EQ(toHex(ctx.final()), c.mac);
    }
}

TEST(Hmac, MidstateReusableAcrossMessages)
{
    // One prepared key, many MACs: each must equal the one-shot MAC,
    // including for keys longer than the block size (hashed first).
    Rng rng(555);
    for (std::size_t key_len : {1u, 32u, 64u, 65u, 131u}) {
        std::vector<std::uint8_t> key(key_len);
        rng.fill(key);
        HmacKey prepared{std::span<const std::uint8_t>(key)};
        for (std::size_t msg_len : {0u, 1u, 55u, 64u, 200u, 1096u}) {
            std::vector<std::uint8_t> msg(msg_len);
            rng.fill(msg);
            EXPECT_EQ(hmacSha256(prepared, msg), hmacSha256(key, msg))
                << "key " << key_len << " msg " << msg_len;
        }
    }
}

TEST(Keys, StableDerivation)
{
    KeyManager km(1234);
    const Aes128& c1 = km.pageCipher(7);
    const Aes128& c1_again = km.pageCipher(7);
    EXPECT_EQ(&c1, &c1_again);
    EXPECT_EQ(km.derivedKeyCount(), 1u);
}

TEST(Keys, DistinctResourcesGetDistinctKeys)
{
    KeyManager km(1234);
    AesBlock zero{};
    AesBlock c1, c2;
    km.pageCipher(1).encryptBlock(zero.data(), c1.data());
    km.pageCipher(2).encryptBlock(zero.data(), c2.data());
    EXPECT_NE(c1, c2);
}

TEST(Keys, DifferentMasterSeedsDiffer)
{
    KeyManager a(1), b(2);
    AesBlock zero{};
    AesBlock ca, cb;
    a.pageCipher(1).encryptBlock(zero.data(), ca.data());
    b.pageCipher(1).encryptBlock(zero.data(), cb.data());
    EXPECT_NE(ca, cb);
    EXPECT_NE(a.sealingKey(1), b.sealingKey(1));
}

TEST(Keys, SealingKeyDiffersFromPageKey)
{
    KeyManager km(99);
    // Sealing key and page key are derived with different labels; check
    // the sealing keys for two resources differ too.
    EXPECT_NE(km.sealingKey(1), km.sealingKey(2));
}

// Parameterized property sweep: CTR round-trips across sizes and seeds.
class CtrRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CtrRoundTrip, Holds)
{
    auto [seed, len] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    AesKey key;
    rng.fill(key);
    Aes128 aes(key);
    Iv iv;
    rng.fill(iv);
    std::vector<std::uint8_t> pt(static_cast<std::size_t>(len));
    rng.fill(pt);
    std::vector<std::uint8_t> ct(pt);
    aesCtrXcryptInPlace(aes, iv, ct);
    aesCtrXcryptInPlace(aes, iv, ct);
    EXPECT_EQ(ct, pt);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CtrRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 16, 255, 4096)));

} // namespace
} // namespace osh::crypto
