/**
 * @file
 * Shadow-resolution fast-path tests: ASID-tagged shadow retention, the
 * re-encryption victim cache, SystemConfig::Builder validation, and
 * the bounded audit ring.
 *
 * The retention and victim-cache optimizations are only safe if they
 * are invisible: a retained translation must die with the frame it
 * maps, a fork child must never see the parent's plaintext view, and a
 * cached encrypt result must never be served for a page that was
 * dirtied or tampered with in between. These tests pin each of those
 * edges.
 */

#include "cloak/engine.hh"
#include "sim/machine.hh"
#include "system/system.hh"
#include "vmm/vcpu.hh"
#include "vmm/vmm.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

namespace osh::cloak
{
namespace
{

/** Guest OS stub: fixed page tables, no fault handling. */
class FakeOs : public vmm::GuestOsHooks
{
  public:
    void
    map(Asid asid, GuestVA va, Gpa gpa)
    {
        ptes_[{asid, pageBase(va)}] =
            vmm::GuestPte{pageBase(gpa), true, true, true, false};
    }

    vmm::GuestPte
    translateGuest(Asid asid, GuestVA va) override
    {
        auto it = ptes_.find({asid, pageBase(va)});
        return it == ptes_.end() ? vmm::GuestPte{} : it->second;
    }

    void
    handleGuestPageFault(vmm::Vcpu&, GuestVA va, vmm::AccessType) override
    {
        throw vmm::ProcessKilled{
            0, formatString("unexpected guest fault at 0x%llx",
                            static_cast<unsigned long long>(va))};
    }

  private:
    std::map<std::pair<Asid, GuestVA>, vmm::GuestPte> ptes_;
};

constexpr Asid appAsid = 5;
constexpr Asid kernelAsid = 0;
constexpr GuestVA appVa = 0x10000;
constexpr Gpa gpa = 0x3000;

inline GuestVA kernelVaOf(Gpa g) { return 0x800000000000ull + g; }

/** Machine + VMM + engine + one cloaked domain, fast path togglable. */
struct Rig
{
    explicit Rig(bool fast_path = true)
        : machine_(sim::MachineConfig{256, 7, {}, {}}),
          vmm_(machine_, 256),
          engine_(vmm_, 99, 64)
    {
        vmm_.setGuestOs(&os_);
        vmm_.setShadowRetention(fast_path);
        engine_.setVictimCacheCapacity(fast_path ? 8 : 0);
        domain_ = engine_.createDomain(appAsid, 5,
                                       programIdentity("victim"));
        os_.map(appAsid, appVa, gpa);
        os_.map(kernelAsid, kernelVaOf(gpa), gpa);
        resource_ = engine_.registerRegion(domain_, appVa, 4);
    }

    vmm::Vcpu
    appCpu()
    {
        return vmm::Vcpu(vmm_, vmm::Context{appAsid, domain_, false});
    }

    vmm::Vcpu
    kernelCpu()
    {
        return vmm::Vcpu(vmm_,
                         vmm::Context{kernelAsid, systemDomain, true});
    }

    Mpa frame() { return vmm_.pmap().translate(gpa); }

    sim::Machine machine_;
    vmm::Vmm vmm_;
    CloakEngine engine_;
    FakeOs os_;
    DomainId domain_ = 0;
    ResourceId resource_ = 0;
};

/** Fixture sugar: exposes the default (fast-path-on) rig's members. */
class FastPathTest : public ::testing::Test
{
  protected:
    explicit FastPathTest(bool fast_path = true) : rig_(fast_path) {}

    vmm::Vcpu appCpu() { return rig_.appCpu(); }
    vmm::Vcpu kernelCpu() { return rig_.kernelCpu(); }
    Mpa frame() { return rig_.frame(); }

    Rig rig_;
    sim::Machine& machine_ = rig_.machine_;
    vmm::Vmm& vmm_ = rig_.vmm_;
    CloakEngine& engine_ = rig_.engine_;
    DomainId& domain_ = rig_.domain_;
};

// ---------------------------------------------------------------------
// Shadow retention.
// ---------------------------------------------------------------------

TEST_F(FastPathTest, CloakFlipSuspendsAndReactivatesShadow)
{
    auto app = appCpu();
    auto kernel = kernelCpu();

    app.store64(appVa, 0xfeed);       // plaintext, app shadow installed
    kernel.load64(kernelVaOf(gpa));   // encrypt: app shadow suspended

    EXPECT_GE(vmm_.shadows().suspendedCount(), 1u);
    std::uint64_t fills_before = vmm_.shadows().stats().value("installs");

    // The app resumes: same context, same VA, same frame. The retained
    // entry must revalidate instead of a full shadow fill.
    EXPECT_EQ(app.load64(appVa), 0xfeedu);
    EXPECT_EQ(vmm_.stats().value("retention_hits"), 1u);
    EXPECT_EQ(vmm_.shadows().stats().value("reactivations"), 1u);
    EXPECT_EQ(vmm_.shadows().stats().value("installs"), fills_before);
}

TEST_F(FastPathTest, FrameReclaimDropsSuspendedEntries)
{
    auto app = appCpu();
    auto kernel = kernelCpu();

    app.store64(appVa, 1);
    kernel.load64(kernelVaOf(gpa)); // suspends the app's entry

    // The kernel reclaims the frame (swap-out / reuse): the
    // translation is dead, retention must not survive it.
    vmm_.invalidateMpa(frame());
    EXPECT_EQ(vmm_.shadows().suspendedCount(), 0u);

    // Next access rebuilds from scratch — no reactivation.
    EXPECT_EQ(app.load64(appVa), 1u);
    EXPECT_EQ(vmm_.stats().value("retention_hits"), 0u);
}

TEST_F(FastPathTest, ForkChildDoesNotInheritParentShadow)
{
    // Retention is keyed by full context (asid, view, mode). A fork
    // child — new asid, new domain — must never reactivate the
    // parent's suspended plaintext translation even for the same
    // frame.
    vmm::Context parent{appAsid, domain_, false};
    vmm::Context child{appAsid + 1, domain_ + 1, false};
    vmm::ShadowEntry e{frame(), true, true};

    vmm_.shadows().install(parent, pageBase(appVa), e);
    vmm_.shadows().suspendMpa(frame());
    EXPECT_EQ(vmm_.shadows().suspendedCount(), 1u);

    EXPECT_FALSE(vmm_.shadows().reactivate(child, pageBase(appVa), e));
    EXPECT_FALSE(
        vmm_.shadows().lookup(child, pageBase(appVa)).has_value());
    EXPECT_EQ(vmm_.shadows().entryCount(child.asid), 0u);

    // The parent itself still reactivates.
    EXPECT_TRUE(vmm_.shadows().reactivate(parent, pageBase(appVa), e));
}

class FastPathOffTest : public FastPathTest
{
  protected:
    FastPathOffTest() : FastPathTest(false) {}
};

TEST_F(FastPathOffTest, AblationFlushesOnContextSwitchAndFlip)
{
    auto app = appCpu();
    auto kernel = kernelCpu();

    app.store64(appVa, 1);
    kernel.load64(kernelVaOf(gpa)); // flip: hard invalidation, no park
    EXPECT_EQ(vmm_.shadows().suspendedCount(), 0u);
    EXPECT_EQ(app.load64(appVa), 1u);
    EXPECT_EQ(vmm_.stats().value("retention_hits"), 0u);

    // A context switch throws every shadow away.
    vmm_.onContextSwitch();
    EXPECT_EQ(vmm_.shadows().entryCount(), 0u);
    EXPECT_EQ(vmm_.stats().value("switch_flushes"), 1u);
}

TEST_F(FastPathTest, RetentionKeepsShadowsAcrossContextSwitch)
{
    auto app = appCpu();
    app.store64(appVa, 1);
    std::size_t live = vmm_.shadows().entryCount();
    ASSERT_GE(live, 1u);

    vmm_.onContextSwitch();
    EXPECT_EQ(vmm_.shadows().entryCount(), live);
    EXPECT_EQ(vmm_.stats().value("switches_retained"), 1u);
    EXPECT_EQ(vmm_.stats().value("switch_flushes"), 0u);
}

TEST_F(FastPathTest, FastPathCostsLessThanAblation)
{
    // The same kernel<->app ping-pong, measured with the fast path on
    // (this fixture's rig) and off (a second rig). On-path must be
    // strictly cheaper in simulated cycles.
    auto ping = [](Rig& r) {
        auto app = r.appCpu();
        auto kernel = r.kernelCpu();
        app.store64(appVa, 1);
        kernel.load64(kernelVaOf(gpa));
        app.load64(appVa); // decrypt; warm victim + retention state
        Cycles before = r.machine_.cost().cycles();
        for (int i = 0; i < 16; ++i) {
            kernel.load64(kernelVaOf(gpa)); // clean re-encrypt
            app.load64(appVa);              // decrypt + verify
        }
        return r.machine_.cost().cycles() - before;
    };

    Cycles fast = ping(rig_);
    Rig slow_rig(false);
    Cycles slow = ping(slow_rig);
    EXPECT_LT(fast, slow);
    EXPECT_GE(engine_.stats().value("victim_reencrypt_hits"), 16u);
    EXPECT_GE(engine_.stats().value("victim_decrypt_hits"), 16u);
}

// ---------------------------------------------------------------------
// Victim cache correctness.
// ---------------------------------------------------------------------

TEST_F(FastPathTest, VictimCacheNeverServesStalePlaintext)
{
    auto app = appCpu();
    auto kernel = kernelCpu();

    app.store64(appVa, 111);
    kernel.load64(kernelVaOf(gpa)); // encrypt v1, victim remembers it
    EXPECT_EQ(app.load64(appVa), 111u);

    // Dirty the page between encrypt and reuse: the next encrypt must
    // produce fresh ciphertext (new version + IV), and the decrypt
    // must return the new value — not the cached v1 plaintext.
    app.store64(appVa, 222);
    kernel.load64(kernelVaOf(gpa));
    EXPECT_EQ(app.load64(appVa), 222u);

    // And the page is still usable through further clean round trips.
    kernel.load64(kernelVaOf(gpa));
    EXPECT_EQ(app.load64(appVa), 222u);
}

TEST_F(FastPathTest, VictimCacheDoesNotMaskTampering)
{
    auto app = appCpu();
    auto kernel = kernelCpu();

    app.store64(appVa, 42);
    kernel.load64(kernelVaOf(gpa)); // encrypt; victim caches result
    app.load64(appVa);              // decrypt; victim caches plaintext
    kernel.load64(kernelVaOf(gpa)); // re-encrypt (victim hit is fine)

    // A malicious kernel flips a byte of ciphertext. The cached-match
    // fast path must miss (frame != cached authentic ciphertext) and
    // the full verification must kill the process.
    kernel.store64(kernelVaOf(gpa), 0xbad);
    EXPECT_THROW(app.load64(appVa), vmm::ProcessKilled);
    EXPECT_GE(engine_.stats().value("violations"), 1u);
}

TEST_F(FastPathTest, VictimCacheEvictsAtCapacity)
{
    engine_.setVictimCacheCapacity(2);
    auto app = appCpu();
    auto kernel = kernelCpu();

    // Every dirty round trip bumps the page version, creating new
    // victim entries; the ring must stay bounded and stay correct.
    for (std::uint64_t i = 1; i <= 5; ++i) {
        app.store64(appVa, i);          // dirty -> fresh version
        kernel.load64(kernelVaOf(gpa)); // encrypt, insert
        EXPECT_EQ(app.load64(appVa), i); // decrypt, insert
        EXPECT_LE(engine_.victimCache().size(), 2u);
    }
}

// ---------------------------------------------------------------------
// SystemConfig::Builder validation.
// ---------------------------------------------------------------------

TEST(BuilderTest, RejectsNonsenseConfigs)
{
    using system::SystemConfig;
    EXPECT_THROW(SystemConfig::Builder{}.guestFrames(0).build(),
                 std::invalid_argument);
    EXPECT_THROW(SystemConfig::Builder{}.metadataCacheEntries(0).build(),
                 std::invalid_argument);
    EXPECT_THROW(SystemConfig::Builder{}.auditLogEntries(0).build(),
                 std::invalid_argument);
    EXPECT_THROW(SystemConfig::Builder{}
                     .cloaking(false)
                     .victimCacheEntries(4)
                     .build(),
                 std::invalid_argument);
    EXPECT_THROW(SystemConfig::Builder{}.cryptoWorkers(257).build(),
                 std::invalid_argument);
    EXPECT_THROW(SystemConfig::Builder{}
                     .cloaking(false)
                     .cryptoWorkers(8)
                     .build(),
                 std::invalid_argument);
    // 0 (auto) and 1 (serial) are valid with cloaking on or off.
    EXPECT_EQ(SystemConfig::Builder{}.cryptoWorkers(8).build()
                  .cryptoWorkers,
              8u);
    EXPECT_EQ(SystemConfig::Builder{}
                  .cloaking(false)
                  .cryptoWorkers(1)
                  .build()
                  .cryptoWorkers,
              1u);
}

TEST(BuilderTest, BuildsValidatedConfig)
{
    auto cfg = system::SystemConfig::Builder{}
                   .guestFrames(128)
                   .seed(7)
                   .cloaking(true)
                   .shadowRetention(false)
                   .victimCacheEntries(0)
                   .auditLogEntries(16)
                   .build();
    EXPECT_EQ(cfg.guestFrames, 128u);
    EXPECT_EQ(cfg.seed, 7u);
    EXPECT_FALSE(cfg.shadowRetention);
    EXPECT_EQ(cfg.victimCacheEntries, 0u);
    EXPECT_EQ(cfg.auditLogEntries, 16u);

    // Native baseline with the victim cache left at its default is
    // fine — the default is not an explicit request.
    EXPECT_NO_THROW(
        system::SystemConfig::Builder{}.cloaking(false).build());
}

// ---------------------------------------------------------------------
// Bounded audit ring.
// ---------------------------------------------------------------------

TEST(AuditLogTest, RingDropsOldestAndCounts)
{
    AuditLog ring(3);
    for (std::uint64_t i = 1; i <= 5; ++i) {
        AuditEvent ev;
        ev.domain = static_cast<DomainId>(i);
        ring.push(ev);
    }
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.dropped(), 2u);
    EXPECT_EQ(ring.front().domain, 3u); // 1 and 2 fell off
    EXPECT_EQ(ring.back().domain, 5u);
}

TEST_F(FastPathTest, EngineErrorsLandInBoundedRing)
{
    engine_.setAuditLogCapacity(2);
    crypto::Digest bogus{};
    for (int i = 0; i < 3; ++i) {
        auto r = engine_.verifyCtcHash(domain_, bogus);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error(), CloakError::NoCtcHash);
    }
    EXPECT_EQ(engine_.auditLog().size(), 2u);
    EXPECT_EQ(engine_.auditLog().dropped(), 1u);
    EXPECT_EQ(engine_.auditLog().back().code, CloakError::NoCtcHash);
    EXPECT_EQ(engine_.stats().value("audit_errors"), 3u);
}

// ---------------------------------------------------------------------
// Whole-system runs: paging pressure with retention on and off.
// ---------------------------------------------------------------------

TEST(FastPathSystemTest, SwapOutUnderRetentionStaysCorrect)
{
    // 96 frames force the 200-page working set through swap: every
    // swapped-out frame is reclaimed and re-used, so any stale
    // retained shadow would read the wrong page (or dead plaintext).
    auto run = [](bool fast_path) {
        auto cfg = system::SystemConfig::Builder{}
                       .cloaking(true)
                       .guestFrames(96)
                       .shadowRetention(fast_path)
                       .victimCacheEntries(fast_path ? 8 : 0)
                       .build();
        system::System sys(cfg);
        workloads::registerAll(sys);
        auto r = sys.runProgram("wl.memstress", {"200", "2"});
        EXPECT_EQ(r.status, 0) << r.killReason;
        EXPECT_FALSE(r.killed) << r.killReason;
        return sys.cycles();
    };
    Cycles fast = run(true);
    Cycles slow = run(false);
    EXPECT_LT(fast, slow);
}

} // namespace
} // namespace osh::cloak
