/**
 * @file
 * Unit tests for the kernel's building blocks, independent of a full
 * simulation: address spaces/VMAs, the frame allocator, the swap
 * device and the VFS naming layer.
 */

#include "os/addrspace.hh"
#include "os/frames.hh"
#include "os/swap.hh"
#include "os/vfs.hh"

#include <gtest/gtest.h>

namespace osh::os
{
namespace
{

// ---------------------------------------------------------------------------
// AddressSpace
// ---------------------------------------------------------------------------

TEST(AddressSpace, VmaLookupBoundaries)
{
    AddressSpace as(1);
    Vma v;
    v.start = 0x10000;
    v.end = 0x14000;
    ASSERT_TRUE(as.addVma(v));
    EXPECT_EQ(as.findVma(0x0ffff), nullptr);
    EXPECT_NE(as.findVma(0x10000), nullptr);
    EXPECT_NE(as.findVma(0x13fff), nullptr);
    EXPECT_EQ(as.findVma(0x14000), nullptr);
}

TEST(AddressSpace, OverlapRejected)
{
    AddressSpace as(1);
    Vma v;
    v.start = 0x10000;
    v.end = 0x14000;
    ASSERT_TRUE(as.addVma(v));
    Vma w = v;
    // Identical range.
    EXPECT_FALSE(as.addVma(w));
    // Overlapping from below.
    w.start = 0xc000;
    w.end = 0x11000;
    EXPECT_FALSE(as.addVma(w));
    // Overlapping from above.
    w.start = 0x13000;
    w.end = 0x18000;
    EXPECT_FALSE(as.addVma(w));
    // Containing.
    w.start = 0x8000;
    w.end = 0x20000;
    EXPECT_FALSE(as.addVma(w));
    // Adjacent is fine.
    w.start = 0x14000;
    w.end = 0x15000;
    EXPECT_TRUE(as.addVma(w));
    w.start = 0xf000;
    w.end = 0x10000;
    EXPECT_TRUE(as.addVma(w));
}

TEST(AddressSpace, ArenaAllocationsDontCollide)
{
    AddressSpace as(1);
    Vma anon;
    anon.type = VmaType::Anon;
    GuestVA a = as.allocVma(anon, 4);
    GuestVA b = as.allocVma(anon, 8);
    EXPECT_GE(b, a + 4 * pageSize);
    Vma file;
    file.type = VmaType::File;
    GuestVA f = as.allocVma(file, 2);
    EXPECT_GE(f, fileMapBase);
}

TEST(AddressSpace, RemoveVmaCollectsPtes)
{
    AddressSpace as(1);
    Vma v;
    v.start = 0x10000;
    v.end = 0x13000;
    ASSERT_TRUE(as.addVma(v));
    as.pte(0x10000).present = true;
    as.pte(0x10000).gpa = 0x1000;
    as.pte(0x12000).swapped = true;
    as.pte(0x12000).slot = 7;

    std::vector<Pte> dropped;
    std::vector<GuestVA> vas;
    auto removed = as.removeVma(0x10000, dropped, vas);
    ASSERT_TRUE(removed.has_value());
    EXPECT_EQ(dropped.size(), 2u);
    EXPECT_EQ(as.findVma(0x10000), nullptr);
    EXPECT_EQ(as.findPte(0x10000), nullptr);
    // Removing again fails cleanly.
    dropped.clear();
    vas.clear();
    EXPECT_FALSE(as.removeVma(0x10000, dropped, vas).has_value());
}

TEST(AddressSpace, ResidentPageCount)
{
    AddressSpace as(1);
    EXPECT_EQ(as.residentPages(), 0u);
    as.pte(0x1000).present = true;
    as.pte(0x2000).present = false;
    as.pte(0x3000).present = true;
    EXPECT_EQ(as.residentPages(), 2u);
}

// ---------------------------------------------------------------------------
// FrameAllocator
// ---------------------------------------------------------------------------

TEST(Frames, AllocateUntilExhausted)
{
    FrameAllocator fa(4);
    std::vector<Gpa> got;
    for (int i = 0; i < 4; ++i) {
        auto g = fa.allocate(FrameUse::Anon);
        ASSERT_TRUE(g.has_value());
        got.push_back(*g);
    }
    EXPECT_FALSE(fa.allocate(FrameUse::Anon).has_value());
    EXPECT_EQ(fa.freeFrames(), 0u);
    // All distinct and page aligned.
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(pageOffset(got[i]), 0u);
        for (std::size_t j = i + 1; j < got.size(); ++j)
            EXPECT_NE(got[i], got[j]);
    }
}

TEST(Frames, RefCountingFreesAtZero)
{
    FrameAllocator fa(2);
    Gpa g = *fa.allocate(FrameUse::Anon);
    fa.ref(g);
    EXPECT_FALSE(fa.unref(g)); // 2 -> 1
    EXPECT_EQ(fa.freeFrames(), 1u);
    EXPECT_TRUE(fa.unref(g)); // 1 -> 0, freed
    EXPECT_EQ(fa.freeFrames(), 2u);
    // Reusable afterwards.
    EXPECT_TRUE(fa.allocate(FrameUse::PageCache).has_value());
}

TEST(Frames, InfoRoundTrip)
{
    FrameAllocator fa(2);
    Gpa g = *fa.allocate(FrameUse::PageCache);
    FrameInfo& fi = fa.info(g);
    EXPECT_EQ(fi.use, FrameUse::PageCache);
    fi.inode = 42;
    fi.pageIndex = 7;
    EXPECT_EQ(fa.info(g).inode, 42u);
    fa.unref(g);
    EXPECT_EQ(fa.info(g).use, FrameUse::Free);
}

TEST(Frames, EvictionCursorSkipsFree)
{
    FrameAllocator fa(4);
    Gpa a = *fa.allocate(FrameUse::Anon);
    Gpa b = *fa.allocate(FrameUse::Anon);
    fa.unref(a);
    // Only b is allocated; the cursor must keep returning it.
    for (int i = 0; i < 3; ++i) {
        auto cand = fa.nextEvictionCandidate();
        ASSERT_TRUE(cand.has_value());
        EXPECT_EQ(*cand, b);
    }
    fa.unref(b);
    EXPECT_FALSE(fa.nextEvictionCandidate().has_value());
}

// ---------------------------------------------------------------------------
// SwapDevice
// ---------------------------------------------------------------------------

TEST(Swap, SlotRoundTrip)
{
    sim::CostModel cost;
    SwapDevice swap(cost, 8);
    auto slot = swap.allocate();
    ASSERT_TRUE(slot.has_value());

    std::array<std::uint8_t, pageSize> out_page;
    out_page.fill(0x5a);
    swap.writeSlot(*slot, out_page);
    EXPECT_GT(cost.cycles(), 0u);

    std::array<std::uint8_t, pageSize> in_page{};
    swap.readSlot(*slot, in_page);
    EXPECT_EQ(in_page, out_page);
    EXPECT_EQ(swap.slotsInUse(), 1u);
    swap.release(*slot);
    EXPECT_EQ(swap.slotsInUse(), 0u);
}

TEST(Swap, ReleaseScrubsSlotBytes)
{
    // Regression: release() left the freed slot's ciphertext in place,
    // so allocate() handed the previous occupant's bytes to the next
    // owner (freed-slot resurrection without even needing a hostile
    // disk).
    sim::CostModel cost;
    SwapDevice swap(cost, 4);
    auto slot = swap.allocate();
    ASSERT_TRUE(slot.has_value());
    std::array<std::uint8_t, pageSize> page;
    page.fill(0xd7);
    swap.writeSlot(*slot, page);
    Cycles before = cost.cycles();
    swap.release(*slot);
    // The scrub is bookkeeping, not modelled disk I/O.
    EXPECT_EQ(cost.cycles(), before);

    auto again = swap.allocate();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *slot); // LIFO free list hands the slot back.
    for (std::uint8_t byte : swap.slotBytes(*again))
        ASSERT_EQ(byte, 0u);
}

TEST(Swap, SlotsAreReused)
{
    sim::CostModel cost;
    SwapDevice swap(cost, 2);
    auto a = swap.allocate();
    auto b = swap.allocate();
    ASSERT_TRUE(a && b);
    EXPECT_FALSE(swap.allocate().has_value()); // full
    swap.release(*a);
    auto c = swap.allocate();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, *a);
}

TEST(Swap, ChargesDiskCosts)
{
    sim::CostModel cost;
    SwapDevice swap(cost, 2);
    auto slot = swap.allocate();
    std::array<std::uint8_t, pageSize> page{};
    Cycles before = cost.cycles();
    swap.writeSlot(*slot, page);
    Cycles write_cost = cost.cycles() - before;
    EXPECT_GE(write_cost, cost.params().diskAccess);
}

// ---------------------------------------------------------------------------
// Vfs
// ---------------------------------------------------------------------------

TEST(VfsNaming, PathResolution)
{
    Vfs vfs;
    EXPECT_GT(vfs.create("/a", InodeType::Directory), 0);
    EXPECT_GT(vfs.create("/a/b", InodeType::Directory), 0);
    std::int64_t f = vfs.create("/a/b/c.txt", InodeType::File);
    EXPECT_GT(f, 0);
    EXPECT_EQ(vfs.lookup("/a/b/c.txt"), f);
    EXPECT_EQ(vfs.lookup("/a/b/"), vfs.lookup("/a/b"));
    EXPECT_EQ(vfs.lookup("relative"), -errInval);
    EXPECT_EQ(vfs.lookup("/a/missing"), -errNoEnt);
    EXPECT_EQ(vfs.lookup("/a/b/c.txt/x"), -errNotDir);
}

TEST(VfsNaming, CreateErrors)
{
    Vfs vfs;
    EXPECT_GT(vfs.create("/f", InodeType::File), 0);
    EXPECT_EQ(vfs.create("/f", InodeType::File), -errExist);
    EXPECT_EQ(vfs.create("/nodir/f", InodeType::File), -errNoEnt);
    EXPECT_EQ(vfs.create("/f/sub", InodeType::File), -errNotDir);
    EXPECT_EQ(vfs.create("/", InodeType::Directory), -errInval);
}

TEST(VfsNaming, UnlinkSemantics)
{
    Vfs vfs;
    vfs.create("/d", InodeType::Directory);
    vfs.create("/d/f", InodeType::File);
    EXPECT_EQ(vfs.unlink("/d"), -errBusy); // non-empty dir
    EXPECT_EQ(vfs.unlink("/d/f"), 0);
    EXPECT_EQ(vfs.unlink("/d/f"), -errNoEnt);
    EXPECT_EQ(vfs.unlink("/d"), 0); // now empty
}

TEST(VfsNaming, RenameMovesAcrossDirs)
{
    Vfs vfs;
    vfs.create("/a", InodeType::Directory);
    vfs.create("/b", InodeType::Directory);
    std::int64_t f = vfs.create("/a/x", InodeType::File);
    EXPECT_EQ(vfs.rename("/a/x", "/b/y"), 0);
    EXPECT_EQ(vfs.lookup("/a/x"), -errNoEnt);
    EXPECT_EQ(vfs.lookup("/b/y"), f);
    EXPECT_EQ(vfs.rename("/a/x", "/b/z"), -errNoEnt);
    vfs.create("/b/w", InodeType::File);
    EXPECT_EQ(vfs.rename("/b/y", "/b/w"), -errExist);
}

TEST(VfsNaming, DirEntryEnumeration)
{
    Vfs vfs;
    vfs.create("/z", InodeType::File);
    vfs.create("/a", InodeType::File);
    vfs.create("/m", InodeType::File);
    std::string name;
    // Sorted order (std::map).
    EXPECT_EQ(vfs.dirEntry(vfs.root(), 0, name), 0);
    EXPECT_EQ(name, "a");
    EXPECT_EQ(vfs.dirEntry(vfs.root(), 2, name), 0);
    EXPECT_EQ(name, "z");
    EXPECT_EQ(vfs.dirEntry(vfs.root(), 3, name), -errNoEnt);
}

TEST(VfsNaming, ReapOnlyWhenUnreferenced)
{
    Vfs vfs;
    std::int64_t f = vfs.create("/f", InodeType::File);
    Inode& ino = vfs.inode(static_cast<InodeId>(f));
    ino.openCount = 1;
    vfs.unlink("/f");
    // Still open: survives.
    EXPECT_TRUE(vfs.reapIfUnreferenced(static_cast<InodeId>(f)).empty());
    EXPECT_TRUE(vfs.exists(static_cast<InodeId>(f)));
    ino.openCount = 0;
    vfs.reapIfUnreferenced(static_cast<InodeId>(f));
    EXPECT_FALSE(vfs.exists(static_cast<InodeId>(f)));
}

TEST(VfsNaming, ReapReturnsCachedPages)
{
    Vfs vfs;
    std::int64_t f = vfs.create("/f", InodeType::File);
    Inode& ino = vfs.inode(static_cast<InodeId>(f));
    ino.cache[0] = PageCacheEntry{0x1000, false, 0};
    ino.cache[3] = PageCacheEntry{0x5000, true, 0};
    vfs.unlink("/f");
    auto pages = vfs.reapIfUnreferenced(static_cast<InodeId>(f));
    EXPECT_EQ(pages.size(), 2u);
}

} // namespace
} // namespace osh::os
