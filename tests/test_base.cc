/**
 * @file
 * Unit tests for src/base: types, byte helpers, RNG, stats, logging.
 */

#include "base/bytes.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/types.hh"

#include <gtest/gtest.h>

#include <set>

namespace osh
{
namespace
{

TEST(Types, PageArithmetic)
{
    EXPECT_EQ(pageSize, 4096u);
    EXPECT_EQ(pageBase(0x12345), 0x12000u);
    EXPECT_EQ(pageOffset(0x12345), 0x345u);
    EXPECT_EQ(pageNumber(0x12345), 0x12u);
    EXPECT_EQ(roundUpToPage(0), 0u);
    EXPECT_EQ(roundUpToPage(1), pageSize);
    EXPECT_EQ(roundUpToPage(pageSize), pageSize);
    EXPECT_EQ(roundUpToPage(pageSize + 1), 2 * pageSize);
}

TEST(Bytes, LittleEndianRoundTrip)
{
    std::uint8_t buf[8];
    storeLe64(buf, 0x0123456789abcdefull);
    EXPECT_EQ(buf[0], 0xef);
    EXPECT_EQ(buf[7], 0x01);
    EXPECT_EQ(loadLe64(buf), 0x0123456789abcdefull);
    storeLe32(buf, 0xdeadbeef);
    EXPECT_EQ(loadLe32(buf), 0xdeadbeefu);
    storeLe16(buf, 0xcafe);
    EXPECT_EQ(loadLe16(buf), 0xcafeu);
}

TEST(Bytes, BigEndianRoundTrip)
{
    std::uint8_t buf[8];
    storeBe32(buf, 0x01020304);
    EXPECT_EQ(buf[0], 0x01);
    EXPECT_EQ(buf[3], 0x04);
    EXPECT_EQ(loadBe32(buf), 0x01020304u);
    storeBe64(buf, 0x1122334455667788ull);
    EXPECT_EQ(buf[0], 0x11);
    EXPECT_EQ(buf[7], 0x88);
}

TEST(Bytes, HexRoundTrip)
{
    std::vector<std::uint8_t> data = {0x00, 0x7f, 0xff, 0xab};
    std::string hex = toHex(data);
    EXPECT_EQ(hex, "007fffab");
    EXPECT_EQ(fromHex(hex), data);
    EXPECT_EQ(fromHex("0G").size(), 0u);
    EXPECT_EQ(fromHex("abc").size(), 0u);
    EXPECT_TRUE(fromHex("ABCD") == fromHex("abcd"));
}

TEST(Bytes, ConstantTimeEqual)
{
    std::vector<std::uint8_t> a = {1, 2, 3};
    std::vector<std::uint8_t> b = {1, 2, 3};
    std::vector<std::uint8_t> c = {1, 2, 4};
    std::vector<std::uint8_t> d = {1, 2};
    EXPECT_TRUE(constantTimeEqual(a, b));
    EXPECT_FALSE(constantTimeEqual(a, c));
    EXPECT_FALSE(constantTimeEqual(a, d));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
    bool diff = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        diff |= a2.next64() != c.next64();
    EXPECT_TRUE(diff);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.nextBounded(17);
        EXPECT_LT(v, 17u);
    }
    // Degenerate bound of 1 always yields 0.
    EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, FillCoversOddLengths)
{
    Rng rng(5);
    std::vector<std::uint8_t> buf(13, 0);
    rng.fill(buf);
    // Extremely unlikely that 13 random bytes are all zero.
    int nonzero = 0;
    for (auto b : buf)
        nonzero += b != 0;
    EXPECT_GT(nonzero, 0);
}

TEST(Stats, CountersAccumulate)
{
    StatGroup g("vmm");
    g.counter("exits").inc();
    g.counter("exits").inc(4);
    EXPECT_EQ(g.value("exits"), 5u);
    EXPECT_EQ(g.value("missing"), 0u);
    g.resetAll();
    EXPECT_EQ(g.value("exits"), 0u);
}

TEST(Stats, DumpFormat)
{
    StatGroup g("cloak");
    g.counter("faults").inc(2);
    g.counter("decrypts").inc(1);
    std::string d = g.dump();
    EXPECT_NE(d.find("cloak.faults 2"), std::string::npos);
    EXPECT_NE(d.find("cloak.decrypts 1"), std::string::npos);
}

TEST(Stats, SnapshotSorted)
{
    StatGroup g("x");
    g.counter("b").inc(2);
    g.counter("a").inc(1);
    auto snap = g.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first, "a");
    EXPECT_EQ(snap[1].first, "b");
}

TEST(Logging, FormatString)
{
    EXPECT_EQ(formatString("x=%d s=%s", 3, "hi"), "x=3 s=hi");
}

// Capture warn output through a replaced sink.
std::string* gCaptured = nullptr;

void
captureSink(LogLevel, const std::string& msg)
{
    if (gCaptured)
        *gCaptured = msg;
}

TEST(Logging, SinkReplacement)
{
    std::string captured;
    gCaptured = &captured;
    LogSink prev = setLogSink(captureSink);
    osh_warn("count=%d", 7);
    setLogSink(prev);
    gCaptured = nullptr;
    EXPECT_EQ(captured, "count=7");
}

} // namespace
} // namespace osh
