/**
 * @file
 * Unit tests for the VMM: pmap allocation, multi-shadow page tables,
 * reverse-index invalidation, TLB behaviour and register scrubbing.
 */

#include "sim/machine.hh"
#include "vmm/pmap.hh"
#include "vmm/registers.hh"
#include "vmm/shadow.hh"
#include "vmm/tlb.hh"
#include "vmm/vmm.hh"

#include <gtest/gtest.h>

namespace osh::vmm
{
namespace
{

sim::MachineConfig
smallMachine()
{
    sim::MachineConfig cfg;
    cfg.numFrames = 64;
    return cfg;
}

TEST(Pmap, BacksFramesLazily)
{
    sim::Machine m(smallMachine());
    Pmap pmap(m, 16);
    EXPECT_FALSE(pmap.isBacked(0));
    Mpa a = pmap.translate(0x1000);
    EXPECT_TRUE(pmap.isBacked(0x1000));
    EXPECT_FALSE(pmap.isBacked(0x3000));
    // Stable mapping.
    EXPECT_EQ(pmap.translate(0x1000), a);
    // Offset preserved.
    EXPECT_EQ(pmap.translate(0x1234), pageBase(a) + 0x234);
}

TEST(Pmap, DistinctGuestFramesGetDistinctMachineFrames)
{
    sim::Machine m(smallMachine());
    Pmap pmap(m, 16);
    Mpa a = pmap.translate(0);
    Mpa b = pmap.translate(pageSize);
    EXPECT_NE(pageBase(a), pageBase(b));
}

TEST(PmapDeath, OutOfRangeGpaPanics)
{
    sim::Machine m(smallMachine());
    Pmap pmap(m, 4);
    EXPECT_DEATH(pmap.translate(64 * pageSize), "outside guest");
}

TEST(Shadow, PerContextIsolation)
{
    ShadowManager sm;
    Context app{1, 7, false};
    Context kernel{1, systemDomain, true};

    sm.install(app, 0x1000, {0x5000, true, true});
    EXPECT_TRUE(sm.lookup(app, 0x1000).has_value());
    EXPECT_FALSE(sm.lookup(kernel, 0x1000).has_value());

    // The same VA in a different view resolves independently — the
    // essence of multi-shadowing.
    sm.install(kernel, 0x1000, {0x6000, true, false});
    EXPECT_EQ(sm.lookup(app, 0x1000)->mpa, 0x5000u);
    EXPECT_EQ(sm.lookup(kernel, 0x1000)->mpa, 0x6000u);
}

TEST(Shadow, InvalidateVaDropsAllViewsOfAsid)
{
    ShadowManager sm;
    Context app{1, 7, false};
    Context sys{1, systemDomain, true};
    Context other{2, systemDomain, false};
    sm.install(app, 0x1000, {0x5000, true, true});
    sm.install(sys, 0x1000, {0x5000, true, true});
    sm.install(other, 0x1000, {0x7000, true, true});

    sm.invalidateVa(1, 0x1000);
    EXPECT_FALSE(sm.lookup(app, 0x1000).has_value());
    EXPECT_FALSE(sm.lookup(sys, 0x1000).has_value());
    EXPECT_TRUE(sm.lookup(other, 0x1000).has_value());
}

TEST(Shadow, InvalidateMpaDropsEveryMapping)
{
    ShadowManager sm;
    Context a{1, 1, false};
    Context b{2, systemDomain, true};
    Context c{3, 2, false};
    sm.install(a, 0x1000, {0x9000, true, true});
    sm.install(b, 0x2000, {0x9000, true, false});
    sm.install(c, 0x3000, {0xa000, true, true});

    sm.invalidateMpa(0x9000);
    EXPECT_FALSE(sm.lookup(a, 0x1000).has_value());
    EXPECT_FALSE(sm.lookup(b, 0x2000).has_value());
    EXPECT_TRUE(sm.lookup(c, 0x3000).has_value());
    EXPECT_EQ(sm.entryCount(), 1u);
}

TEST(Shadow, ReinstallUpdatesReverseIndex)
{
    ShadowManager sm;
    Context a{1, 1, false};
    sm.install(a, 0x1000, {0x9000, true, true});
    // Re-install the same VA pointing at a different frame.
    sm.install(a, 0x1000, {0xb000, true, true});
    // Invalidating the old frame must not disturb the new mapping.
    sm.invalidateMpa(0x9000);
    ASSERT_TRUE(sm.lookup(a, 0x1000).has_value());
    EXPECT_EQ(sm.lookup(a, 0x1000)->mpa, 0xb000u);
    sm.invalidateMpa(0xb000);
    EXPECT_FALSE(sm.lookup(a, 0x1000).has_value());
}

TEST(Shadow, InvalidateAsidKeepsOthers)
{
    ShadowManager sm;
    Context a{1, 1, false};
    Context b{2, 2, false};
    sm.install(a, 0x1000, {0x9000, true, true});
    sm.install(a, 0x2000, {0xa000, true, true});
    sm.install(b, 0x1000, {0xb000, true, true});
    sm.invalidateAsid(1);
    EXPECT_EQ(sm.entryCount(), 1u);
    EXPECT_TRUE(sm.lookup(b, 0x1000).has_value());
}

TEST(Tlb, HitAndMissCounting)
{
    Tlb tlb(8);
    Context ctx{1, 0, false};
    EXPECT_FALSE(tlb.lookup(ctx, 0x1000).has_value());
    tlb.insert(ctx, 0x1000, {0x5000, true, true});
    ASSERT_TRUE(tlb.lookup(ctx, 0x1000).has_value());
    EXPECT_EQ(tlb.stats().value("hits"), 1u);
    EXPECT_EQ(tlb.stats().value("misses"), 1u);
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb(4);
    Context ctx{1, 0, false};
    for (GuestVA va = 0; va < 8 * pageSize; va += pageSize)
        tlb.insert(ctx, va, {va + 0x100000, true, true});
    EXPECT_LE(tlb.size(), 4u);
    // The newest entries survive FIFO replacement.
    EXPECT_TRUE(tlb.lookup(ctx, 7 * pageSize).has_value());
}

TEST(Tlb, ReinsertAfterInvalidateDoesNotEvictLiveEntry)
{
    // Regression: invalidateVa used to leave the key's fifo occurrence
    // behind, so a re-inserted key was queued twice and the stale front
    // duplicate evicted the *live* re-inserted entry instead of the
    // oldest survivor.
    Tlb tlb(4);
    Context ctx{1, 0, false};
    tlb.insert(ctx, 0x1000, {0xa000, true, true}); // A
    tlb.insert(ctx, 0x2000, {0xb000, true, true}); // B
    tlb.invalidateVa(1, 0x1000);
    tlb.insert(ctx, 0x1000, {0xa000, true, true}); // A again
    tlb.insert(ctx, 0x3000, {0xc000, true, true}); // C
    tlb.insert(ctx, 0x4000, {0xd000, true, true}); // D -> full

    // The next insert must evict B (the oldest live entry), not the
    // freshly re-inserted A via its stale queue duplicate.
    tlb.insert(ctx, 0x5000, {0xe000, true, true}); // E
    EXPECT_TRUE(tlb.lookup(ctx, 0x1000).has_value());
    EXPECT_FALSE(tlb.lookup(ctx, 0x2000).has_value());
    EXPECT_TRUE(tlb.lookup(ctx, 0x5000).has_value());
    EXPECT_LE(tlb.size(), 4u);
}

TEST(Tlb, InvalidationChurnKeepsQueueBounded)
{
    // Regression: the replacement queue grew by one stale key per
    // invalidate/re-insert cycle, unboundedly.
    Tlb tlb(4);
    Context ctx{1, 0, false};
    for (int i = 0; i < 1000; ++i) {
        GuestVA va = static_cast<GuestVA>(0x1000 + (i % 4) * pageSize);
        tlb.insert(ctx, va, {0x100000 + va, true, true});
        tlb.invalidateVa(1, va);
    }
    EXPECT_LE(tlb.queueLength(), 8u); // 2 * capacity compaction bound.
    EXPECT_EQ(tlb.size(), 0u);
}

TEST(Tlb, InvalidationScopes)
{
    Tlb tlb(16);
    Context a{1, 0, false};
    Context b{2, 0, false};
    tlb.insert(a, 0x1000, {0x5000, true, true});
    tlb.insert(a, 0x2000, {0x6000, true, true});
    tlb.insert(b, 0x1000, {0x7000, true, true});

    tlb.invalidateVa(1, 0x1000);
    EXPECT_FALSE(tlb.lookup(a, 0x1000).has_value());
    EXPECT_TRUE(tlb.lookup(a, 0x2000).has_value());
    EXPECT_TRUE(tlb.lookup(b, 0x1000).has_value());

    tlb.invalidateAsid(1);
    EXPECT_FALSE(tlb.lookup(a, 0x2000).has_value());
    EXPECT_TRUE(tlb.lookup(b, 0x1000).has_value());

    tlb.flushAll();
    EXPECT_EQ(tlb.size(), 0u);
}

TEST(Registers, ScrubKeepsSyscallArgs)
{
    RegisterFile regs;
    for (std::size_t i = 0; i < numGprs; ++i)
        regs.gpr[i] = 0x1000 + i;
    regs.pc = 0xdead;
    regs.sp = 0xbeef;
    regs.flags = 0xff;

    regs.scrub(numSyscallRegs, 0x100, 0x200);
    for (std::size_t i = 0; i < numSyscallRegs; ++i)
        EXPECT_EQ(regs.gpr[i], 0x1000 + i);
    for (std::size_t i = numSyscallRegs; i < numGprs; ++i)
        EXPECT_EQ(regs.gpr[i], 0u);
    EXPECT_EQ(regs.pc, 0x100u);
    EXPECT_EQ(regs.sp, 0x200u);
    EXPECT_EQ(regs.flags, 0u);
}

TEST(Registers, FullScrubForInterrupts)
{
    RegisterFile regs;
    regs.gpr[0] = 42;
    regs.gpr[15] = 99;
    regs.scrub(0, 0, 0);
    for (std::size_t i = 0; i < numGprs; ++i)
        EXPECT_EQ(regs.gpr[i], 0u);
}

TEST(Context, HashDistinguishesFields)
{
    std::hash<Context> h;
    Context a{1, 1, false};
    Context b{1, 1, true};
    Context c{1, 2, false};
    Context d{2, 1, false};
    EXPECT_NE(h(a), h(b));
    EXPECT_NE(h(a), h(c));
    EXPECT_NE(h(a), h(d));
    EXPECT_EQ(a, (Context{1, 1, false}));
}

} // namespace
} // namespace osh::vmm
