/**
 * @file
 * Property-based (parameterized) tests of the cloaking invariants.
 *
 * Rather than scripted scenarios, these run randomized operation
 * sequences — application reads/writes, kernel touches, simulated
 * swap relocations, cross-domain interference — across many seeds and
 * sizes, checking after every step that:
 *   - the application always reads exactly what it last wrote
 *     (consistency / integrity),
 *   - the kernel never observes a plaintext value the application
 *     stored (privacy),
 *   - foreign domains never observe plaintext either (isolation).
 */

#include "base/rng.hh"
#include "cloak/engine.hh"
#include "sim/machine.hh"
#include "system/system.hh"
#include "vmm/vcpu.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

namespace osh
{
namespace
{

/** Fake guest OS with mutable mappings (see test_engine.cc). */
class PropOs : public vmm::GuestOsHooks
{
  public:
    void
    map(Asid asid, GuestVA va, Gpa gpa)
    {
        ptes_[{asid, pageBase(va)}] =
            vmm::GuestPte{pageBase(gpa), true, true, true, false};
    }

    vmm::GuestPte
    translateGuest(Asid asid, GuestVA va) override
    {
        auto it = ptes_.find({asid, pageBase(va)});
        return it == ptes_.end() ? vmm::GuestPte{} : it->second;
    }

    void
    handleGuestPageFault(vmm::Vcpu&, GuestVA va, vmm::AccessType) override
    {
        throw vmm::ProcessKilled{
            0, formatString("unexpected fault 0x%llx",
                            static_cast<unsigned long long>(va))};
    }

  private:
    std::map<std::pair<Asid, GuestVA>, vmm::GuestPte> ptes_;
};

/** Random-walk over the page state machine, one test per seed. */
class StateMachineWalk : public ::testing::TestWithParam<int>
{
};

TEST_P(StateMachineWalk, AppViewAlwaysConsistent)
{
    const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    Rng rng(seed);

    sim::Machine machine(sim::MachineConfig{512, seed, {}});
    vmm::Vmm vmm(machine, 512);
    cloak::CloakEngine engine(vmm, seed, 256);
    PropOs os;
    vmm.setGuestOs(&os);

    constexpr Asid appAsid = 4;
    constexpr std::uint64_t numPages = 4;
    constexpr GuestVA base = 0x40000;
    DomainId domain = engine.createDomain(
        appAsid, 4, cloak::programIdentity("walker"));
    std::vector<Gpa> gpas;
    std::vector<Gpa> altGpas; // private migration target per page
    for (std::uint64_t p = 0; p < numPages; ++p) {
        Gpa g = 0x10000 + p * pageSize;
        gpas.push_back(g);
        altGpas.push_back(0x80000 + p * pageSize);
        os.map(appAsid, base + p * pageSize, g);
        os.map(0, 0x0000'8000'0000'0000ull + g, g);
    }
    engine.registerRegion(domain, base, numPages);

    vmm::Vcpu app(vmm, vmm::Context{appAsid, domain, false});
    vmm::Vcpu kernel(vmm, vmm::Context{0, systemDomain, true});

    // Expected app-visible value of word 0 of each page (0 = untouched
    // => zero-fill guarantees zero).
    std::vector<std::uint64_t> expected(numPages, 0);
    std::set<std::uint64_t> secrets;

    for (int step = 0; step < 400; ++step) {
        std::uint64_t p = rng.nextBounded(numPages);
        GuestVA va = base + p * pageSize;
        GuestVA kva = 0x0000'8000'0000'0000ull + gpas[p];
        switch (rng.nextBounded(4)) {
          case 0: { // app write
            std::uint64_t v = rng.next64() | 1;
            app.store64(va, v);
            expected[p] = v;
            secrets.insert(v);
            break;
          }
          case 1: // app read
            ASSERT_EQ(app.load64(va), expected[p])
                << "seed " << seed << " step " << step;
            break;
          case 2: { // benign kernel touch: must never see a secret
            std::uint64_t seen = kernel.load64(kva);
            EXPECT_EQ(secrets.count(seen), 0u)
                << "kernel saw plaintext at step " << step;
            break;
          }
          case 3: { // kernel page migration: move ciphertext to the
                    // page's alternate frame and remap (models
                    // swap-out + swap-in).
            kernel.load64(kva); // force encryption
            std::vector<std::uint8_t> cipher(pageSize);
            machine.memory().read(vmm.pmap().translate(gpas[p]),
                                  cipher);
            Gpa fresh = altGpas[p];
            machine.memory().write(vmm.pmap().translate(fresh), cipher);
            std::swap(gpas[p], altGpas[p]);
            os.map(appAsid, va, fresh);
            os.map(0, 0x0000'8000'0000'0000ull + fresh, fresh);
            vmm.invalidateVa(appAsid, va);
            break;
          }
        }
    }
    // Everything still verifies at the end.
    for (std::uint64_t p = 0; p < numPages; ++p)
        EXPECT_EQ(app.load64(base + p * pageSize), expected[p]);
    EXPECT_EQ(engine.stats().value("violations"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateMachineWalk,
                         ::testing::Range(1, 13));

/** Cross-domain isolation under random interleaving. */
class IsolationWalk : public ::testing::TestWithParam<int>
{
};

TEST_P(IsolationWalk, DomainsNeverSeeEachOther)
{
    const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    Rng rng(seed ^ 0xD0D0);

    sim::Machine machine(sim::MachineConfig{512, seed, {}});
    vmm::Vmm vmm(machine, 512);
    cloak::CloakEngine engine(vmm, seed, 256);
    PropOs os;
    vmm.setGuestOs(&os);

    struct Party
    {
        Asid asid;
        DomainId domain;
        GuestVA va;
        Gpa gpa;
        std::uint64_t value = 0;
    };
    Party a{10, 0, 0x50000, 0x20000, 0};
    Party b{11, 0, 0x60000, 0x21000, 0};
    a.domain = engine.createDomain(a.asid, 10,
                                   cloak::programIdentity("alice"));
    b.domain = engine.createDomain(b.asid, 11,
                                   cloak::programIdentity("bob"));
    for (Party* p : {&a, &b}) {
        os.map(p->asid, p->va, p->gpa);
        engine.registerRegion(p->domain, p->va, 1);
        // Malicious kernel also maps the *other* party's frame into
        // each address space at va + pageSize.
    }
    os.map(a.asid, a.va + pageSize, b.gpa);
    os.map(b.asid, b.va + pageSize, a.gpa);

    vmm::Vcpu cpu_a(vmm, vmm::Context{a.asid, a.domain, false});
    vmm::Vcpu cpu_b(vmm, vmm::Context{b.asid, b.domain, false});

    for (int step = 0; step < 300; ++step) {
        switch (rng.nextBounded(4)) {
          case 0:
            a.value = rng.next64() | 1;
            cpu_a.store64(a.va, a.value);
            break;
          case 1:
            b.value = rng.next64() | 1;
            cpu_b.store64(b.va, b.value);
            break;
          case 2: { // a peeks at b's frame through the hostile mapping
            std::uint64_t seen = cpu_a.load64(a.va + pageSize);
            if (b.value != 0) {
                EXPECT_NE(seen, b.value) << "isolation broken";
            }
            break;
          }
          case 3: {
            std::uint64_t seen = cpu_b.load64(b.va + pageSize);
            if (a.value != 0) {
                EXPECT_NE(seen, a.value) << "isolation broken";
            }
            break;
          }
        }
        // Own data always intact.
        if (a.value != 0) {
            ASSERT_EQ(cpu_a.load64(a.va), a.value);
        }
        if (b.value != 0) {
            ASSERT_EQ(cpu_b.load64(b.va), b.value);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsolationWalk, ::testing::Range(1, 9));

/**
 * Full-system transparency sweep: every workload, several seeds —
 * native and cloaked runs must produce identical checksums.
 */
class TransparencySweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>>
{
};

TEST_P(TransparencySweep, ResultsMatch)
{
    auto [name, seed] = GetParam();
    const std::map<std::string, std::vector<std::string>> argvs = {
        {"wl.matmul", {"10"}},
        {"wl.sort", {"300"}},
        {"wl.stream", {"16", "2"}},
        {"wl.histogram", {"4096"}},
        {"wl.fileserver", {"32", "10", "1024", "1"}},
        {"wl.memstress", {"40", "2", "1"}},
    };
    const auto& argv = argvs.at(name);

    auto run = [&](bool cloaked) {
        system::SystemConfig cfg;
        cfg.cloakingEnabled = cloaked;
        cfg.guestFrames = 1024;
        cfg.seed = static_cast<std::uint64_t>(seed);
        cfg.preemptOpsPerTick = 5000; // aggressive preemption
        system::System sys(cfg);
        workloads::registerAll(sys);
        auto r = sys.runProgram(name, argv);
        EXPECT_EQ(r.status, 0) << r.killReason;
        return workloads::resultOf(sys, name);
    };

    std::string native = run(false);
    std::string cloaked = run(true);
    ASSERT_FALSE(native.empty());
    EXPECT_EQ(native, cloaked);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransparencySweep,
    ::testing::Combine(
        ::testing::Values("wl.matmul", "wl.sort", "wl.stream",
                          "wl.histogram", "wl.fileserver",
                          "wl.memstress"),
        ::testing::Values(1, 7, 99)));

/**
 * Paging-correctness sweep: cloaked working sets under varying memory
 * pressure always compute correct results (integrity across swap).
 */
class PagingSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PagingSweep, CloakedResultsSurvivePressure)
{
    auto [frames, seed] = GetParam();
    system::SystemConfig cfg;
    cfg.cloakingEnabled = true;
    cfg.guestFrames = static_cast<std::uint64_t>(frames);
    cfg.seed = static_cast<std::uint64_t>(seed);
    system::System sys(cfg);
    workloads::registerAll(sys);
    auto r = sys.runProgram("wl.memstress", {"96", "3", "1"});
    EXPECT_EQ(r.status, 0) << r.killReason;

    // Reference without pressure.
    system::SystemConfig big = cfg;
    big.guestFrames = 1024;
    system::System ref(big);
    workloads::registerAll(ref);
    ASSERT_EQ(ref.runProgram("wl.memstress", {"96", "3", "1"}).status,
              0);
    EXPECT_EQ(workloads::resultOf(sys, "wl.memstress"),
              workloads::resultOf(ref, "wl.memstress"));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PagingSweep,
    ::testing::Combine(::testing::Values(72, 96, 128),
                       ::testing::Values(3, 17)));

} // namespace
} // namespace osh
