/**
 * @file
 * Shim-focused integration tests: the three syscall adaptation classes
 * (pass-through, marshalled, emulated), protected-file edge cases, and
 * at-rest ciphertext tampering.
 */

#include "cloak/engine.hh"
#include "os/env.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

namespace osh
{
namespace
{

using os::Env;
using system::System;
using system::SystemConfig;

SystemConfig
cloakedConfig()
{
    SystemConfig cfg;
    cfg.cloakingEnabled = true;
    cfg.guestFrames = 1024;
    cfg.preemptOpsPerTick = 0;
    return cfg;
}

system::ExitResult
runCloaked(System& sys, std::function<int(Env&)> body)
{
    sys.addProgram("shimtest", os::Program{std::move(body), true, 64});
    return sys.runProgram("shimtest");
}

TEST(ShimMarshal, DirectoryOperations)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        if (env.mkdir("/dir") != 0)
            return 1;
        std::int64_t f =
            env.open("/dir/one", os::openCreate | os::openWrite);
        if (f < 0)
            return 2;
        env.close(f);
        if (env.rename("/dir/one", "/dir/two") != 0)
            return 3;
        std::int64_t d = env.open("/dir", os::openRead);
        std::string name;
        if (env.readdir(d, 0, name) < 0 || name != "two")
            return 4;
        env.close(d);
        if (env.unlink("/dir/two") != 0)
            return 5;
        return 0;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimMarshal, FstatThroughBounce)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        std::int64_t f = env.open("/f", os::openCreate | os::openWrite);
        env.writeAll(f, "12345");
        os::StatBuf sb{};
        if (env.fstat(f, sb) != 0)
            return 1;
        env.close(f);
        return sb.size == 5 && sb.isDir == 0 ? 0 : 2;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimMarshal, PipesBetweenCloakedProcesses)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        int rfd = -1, wfd = -1;
        if (env.pipe(rfd, wfd) != 0)
            return 1;
        Pid child = env.fork([rfd, wfd](Env& c) {
            c.close(static_cast<std::uint64_t>(wfd));
            std::string got = c.readSome(
                static_cast<std::uint64_t>(rfd), 64);
            return got == "marshalled hello" ? 17 : 1;
        });
        env.close(static_cast<std::uint64_t>(rfd));
        env.yield();
        env.writeAll(static_cast<std::uint64_t>(wfd),
                     "marshalled hello");
        env.close(static_cast<std::uint64_t>(wfd));
        int status = -1;
        env.waitpid(child, &status);
        return status == 17 ? 0 : 2;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimMarshal, LargeReadsChunkThroughBounce)
{
    // Reads far larger than the bounce area must still round-trip.
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        const std::uint64_t bytes = 48 * pageSize; // > bounce size
        std::int64_t f = env.open("/big", os::openCreate |
                                              os::openRead |
                                              os::openWrite);
        GuestVA buf = env.allocPages(bytes / pageSize);
        for (GuestVA off = 0; off < bytes; off += 8)
            env.store64(buf + off, off * 31 + 7);
        if (env.write(f, buf, bytes) !=
            static_cast<std::int64_t>(bytes))
            return 1;
        env.lseek(f, 0, os::seekSet);
        GuestVA back = env.allocPages(bytes / pageSize);
        if (env.read(f, back, bytes) !=
            static_cast<std::int64_t>(bytes))
            return 2;
        for (GuestVA off = 0; off < bytes; off += 4096) {
            if (env.load64(back + off) != off * 31 + 7)
                return 3;
        }
        env.close(f);
        return 0;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimEmulated, SeekModesAndEof)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        env.mkdir("/cloaked");
        std::int64_t f = env.open("/cloaked/s", os::openCreate |
                                                    os::openRead |
                                                    os::openWrite);
        env.writeAll(f, "abcdefgh");
        if (env.lseek(f, -3, os::seekEnd) != 5)
            return 1;
        if (env.readSome(f, 8) != "fgh")
            return 2;
        if (env.lseek(f, 2, os::seekSet) != 2)
            return 3;
        if (env.lseek(f, 1, os::seekCur) != 3)
            return 4;
        if (env.readSome(f, 2) != "de")
            return 5;
        // Read at EOF.
        env.lseek(f, 0, os::seekEnd);
        GuestVA b = env.allocPages(1);
        if (env.read(f, b, 8) != 0)
            return 6;
        // Negative seek rejected.
        if (env.lseek(f, -100, os::seekSet) != -os::errInval)
            return 7;
        env.close(f);
        return 0;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimEmulated, FtruncateGrowsButNeverShrinks)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        env.mkdir("/cloaked");
        std::int64_t f = env.open("/cloaked/t", os::openCreate |
                                                    os::openRead |
                                                    os::openWrite);
        env.writeAll(f, "data");
        if (env.ftruncate(f, 2) != -os::errInval)
            return 1; // shrink unsupported on protected files
        if (env.ftruncate(f, 3 * pageSize) != 0)
            return 2;
        os::StatBuf sb{};
        env.fstat(f, sb);
        if (sb.size != 3 * pageSize)
            return 3;
        // The grown region reads back as zeroes.
        env.lseek(f, 2 * pageSize, os::seekSet);
        GuestVA b = env.allocPages(1);
        if (env.read(f, b, 8) != 8)
            return 4;
        if (env.load64(b) != 0)
            return 5;
        env.close(f);
        return 0;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimEmulated, UnlinkDiscardsMetadataAndRecreateWorks)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        env.mkdir("/cloaked");
        std::int64_t f = env.open("/cloaked/u", os::openCreate |
                                                    os::openRead |
                                                    os::openWrite);
        env.writeAll(f, "first life");
        env.close(f);
        if (env.unlink("/cloaked/u") != 0)
            return 1;
        // Recreate at the same path: must start fresh, not trip over
        // stale sealed metadata.
        f = env.open("/cloaked/u", os::openCreate | os::openRead |
                                       os::openWrite);
        if (f < 0)
            return 2;
        env.writeAll(f, "second life");
        env.lseek(f, 0, os::seekSet);
        std::string s = env.readSome(f, 32);
        env.close(f);
        return s == "second life" ? 0 : 3;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimEmulated, AtRestCiphertextTamperDetected)
{
    // Tamper with the *disk image* of a protected file between two
    // processes: the next reader must be killed, not fed junk.
    System sys(cloakedConfig());
    // One program (one identity), two phases.
    sys.addProgram("atrest", os::Program{[](Env& env) {
        if (!env.args().empty() && env.args()[0] == "write") {
            env.mkdir("/cloaked");
            std::int64_t f = env.open("/cloaked/at-rest",
                                      os::openCreate | os::openWrite);
            if (f < 0)
                return 1;
            env.writeAll(f, "valuable data at rest");
            env.close(f);
            return 0;
        }
        std::int64_t f = env.open("/cloaked/at-rest", os::openRead);
        if (f < 0)
            return 2;
        env.readSome(f, 32); // must die here
        return 3;
    }, true, 64});

    ASSERT_EQ(sys.runProgram("atrest", {"write"}).status, 0);
    // Flip one ciphertext byte on "disk" and drop the page cache
    // (models a reboot / eviction between the two processes — with the
    // cache warm the tamper would be shadowed by the cached pages).
    auto& vfs = sys.kernel().vfs();
    std::int64_t ino_id = vfs.lookup("/cloaked/at-rest");
    ASSERT_GT(ino_id, 0);
    os::Inode& ino = vfs.inode(static_cast<os::InodeId>(ino_id));
    ASSERT_FALSE(ino.diskData.empty());
    ino.diskData[5] ^= 0x01;
    for (auto& [idx, entry] : ino.cache) {
        ASSERT_EQ(entry.mapCount, 0u);
        sys.kernel().frames().unref(entry.gpa);
    }
    ino.cache.clear();

    auto r = sys.runProgram("atrest", {"read"});
    EXPECT_TRUE(r.killed) << "status " << r.status;
    EXPECT_NE(r.killReason.find("cloak violation"), std::string::npos);
}

TEST(ShimEmulated, SparseWriteAfterSeekPastEof)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        env.mkdir("/cloaked");
        std::int64_t f = env.open("/cloaked/sparse",
                                  os::openCreate | os::openRead |
                                      os::openWrite);
        env.lseek(f, 2 * pageSize + 100, os::seekSet);
        env.writeAll(f, "tail");
        os::StatBuf sb{};
        env.fstat(f, sb);
        if (sb.size != 2 * pageSize + 104)
            return 1;
        // The hole reads back as zero.
        env.lseek(f, pageSize, os::seekSet);
        GuestVA b = env.allocPages(1);
        env.read(f, b, 8);
        if (env.load64(b) != 0)
            return 2;
        env.lseek(f, 2 * pageSize + 100, os::seekSet);
        std::string s = env.readSome(f, 8);
        env.close(f);
        return s == "tail" ? 0 : 3;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimEmulated, OpenMissingProtectedFileFails)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        env.mkdir("/cloaked");
        return env.open("/cloaked/nothing", os::openRead) ==
                       -os::errNoEnt
                   ? 0
                   : 1;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimEmulated, TwoProtectedFilesIndependent)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        env.mkdir("/cloaked");
        std::int64_t a = env.open("/cloaked/a", os::openCreate |
                                                    os::openRead |
                                                    os::openWrite);
        std::int64_t b = env.open("/cloaked/b", os::openCreate |
                                                    os::openRead |
                                                    os::openWrite);
        env.writeAll(a, "AAAA");
        env.writeAll(b, "BBBBBBBB");
        env.lseek(a, 0, os::seekSet);
        env.lseek(b, 0, os::seekSet);
        std::string sa = env.readSome(a, 16);
        std::string sb = env.readSome(b, 16);
        env.close(a);
        env.close(b);
        return sa == "AAAA" && sb == "BBBBBBBB" ? 0 : 1;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimEmulated, DupOfProtectedFdSharesShimState)
{
    // dup() of a protected fd is pass-through; the duplicate is served
    // by the kernel as a regular descriptor while the original stays
    // emulated. Both must close cleanly.
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        env.mkdir("/cloaked");
        std::int64_t f = env.open("/cloaked/d", os::openCreate |
                                                    os::openRead |
                                                    os::openWrite);
        env.writeAll(f, "x");
        std::int64_t d = env.dup(static_cast<std::uint64_t>(f));
        if (d < 0)
            return 1;
        if (env.close(static_cast<std::uint64_t>(d)) != 0)
            return 2;
        env.lseek(f, 0, os::seekSet);
        std::string s = env.readSome(f, 4);
        if (env.close(static_cast<std::uint64_t>(f)) != 0)
            return 3;
        return s == "x" ? 0 : 4;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimPassthrough, ClockAndSleepAndYield)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        Cycles c0 = env.clock();
        env.sleep(5000);
        Cycles c1 = env.clock();
        if (c1 - c0 < 5000)
            return 1;
        env.yield();
        return 0;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(ShimStats, AdaptationClassesCounted)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        env.mkdir("/cloaked");
        std::int64_t p = env.open("/cloaked/f", os::openCreate |
                                                    os::openRead |
                                                    os::openWrite);
        env.writeAll(p, "emulated");
        env.lseek(p, 0, os::seekSet);
        env.readSome(p, 8);
        env.close(p);
        std::int64_t u = env.open("/plain", os::openCreate |
                                                os::openRead |
                                                os::openWrite);
        env.writeAll(u, "marshalled");
        env.close(u);
        return 0;
    });
    ASSERT_EQ(r.status, 0) << r.killReason;
    auto& stats = sys.cloak()->stats();
    EXPECT_GT(stats.value("shim_emulated_writes"), 0u);
    EXPECT_GT(stats.value("shim_emulated_reads"), 0u);
    EXPECT_GT(stats.value("shim_marshalled_writes"), 0u);
    EXPECT_GT(stats.value("shim_protected_opens"), 0u);
    EXPECT_GT(stats.value("shim_protected_closes"), 0u);
}

} // namespace
} // namespace osh
