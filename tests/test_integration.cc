/**
 * @file
 * End-to-end integration tests that exercise longer lifecycles:
 * exec chains across cloaked/native programs, reusing one System for
 * many runs, larger process trees under preemption, and termination
 * semantics for cloaked processes.
 */

#include "cloak/engine.hh"
#include "os/env.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

namespace osh
{
namespace
{

using os::Env;
using system::System;
using system::SystemConfig;

SystemConfig
config(bool cloaked, std::uint64_t frames = 2048)
{
    SystemConfig cfg;
    cfg.cloakingEnabled = cloaked;
    cfg.guestFrames = frames;
    cfg.preemptOpsPerTick = 0;
    return cfg;
}

TEST(Integration, ExecChainAcrossProtectionModes)
{
    // cloaked -> native -> cloaked: domains must be torn down and
    // re-created correctly at each hop.
    System sys(config(true));
    sys.addProgram("hop3", os::Program{[](Env& env) {
        GuestVA p = env.allocPages(1);
        env.store64(p, 3);
        return static_cast<int>(env.load64(p) * 10);
    }, true, 32});
    sys.addProgram("hop2", os::Program{[](Env& env) {
        env.exec("hop3");
        return 0;
    }, false, 32});
    sys.addProgram("hop1", os::Program{[](Env& env) {
        env.exec("hop2");
        return 0;
    }, true, 32});

    auto r = sys.runProgram("hop1");
    EXPECT_EQ(r.status, 30) << r.killReason;
    // hop1 and hop3 each had a domain; both are gone.
    EXPECT_EQ(sys.cloak()->stats().value("domains_created"), 2u);
    EXPECT_EQ(sys.cloak()->stats().value("domains_destroyed"), 2u);
}

TEST(Integration, SystemReusedForManyRuns)
{
    System sys(config(true));
    workloads::registerAll(sys);
    std::string first;
    for (int i = 0; i < 5; ++i) {
        auto r = sys.runProgram("wl.histogram", {"2048"});
        ASSERT_EQ(r.status, 0) << r.killReason;
        std::string cs = workloads::resultOf(sys, "wl.histogram");
        if (i == 0)
            first = cs;
        EXPECT_EQ(cs, first);
    }
    // Five separate pids with recorded results.
    EXPECT_GE(sys.results().size(), 5u);
}

TEST(Integration, WideProcessTreeUnderPreemption)
{
    SystemConfig cfg = config(true);
    cfg.preemptOpsPerTick = 1500;
    System sys(cfg);
    sys.addProgram("leaf", os::Program{[](Env& env) {
        GuestVA p = env.allocPages(1);
        std::uint64_t acc = 7;
        for (int i = 0; i < 4000; ++i) {
            env.store64(p, acc);
            acc = env.load64(p) * 31 + 1;
        }
        return static_cast<int>(acc % 100);
    }, true, 16});
    sys.addProgram("root", os::Program{[](Env& env) {
        std::vector<Pid> kids;
        for (int i = 0; i < 6; ++i)
            kids.push_back(env.spawn("leaf"));
        int sum = 0;
        for (Pid k : kids) {
            int status = -1;
            if (env.waitpid(k, &status) != k)
                return -1;
            sum += status;
        }
        // All leaves compute the same deterministic value.
        return sum % 6 == 0 ? 0 : 1;
    }, true, 32});
    auto r = sys.runProgram("root");
    EXPECT_EQ(r.status, 0) << r.killReason;
    EXPECT_GT(sys.sched().stats().value("preemptions"), 0u);
}

TEST(Integration, NestedForkGrandchildren)
{
    System sys(config(true));
    auto body = [](Env& env) {
        GuestVA p = env.allocPages(1);
        env.store64(p, 40);
        Pid child = env.fork([p](Env& c) {
            c.store64(p, c.load64(p) + 1); // 41, private
            Pid grand = c.fork([p](Env& g) {
                g.store64(p, g.load64(p) + 1); // 42, private
                return static_cast<int>(g.load64(p));
            });
            int gs = -1;
            c.waitpid(grand, &gs);
            if (gs != 42)
                return 1;
            return static_cast<int>(c.load64(p));
        });
        int cs = -1;
        env.waitpid(child, &cs);
        if (cs != 41)
            return 2;
        return env.load64(p) == 40 ? 0 : 3;
    };
    sys.addProgram("nest", os::Program{body, true, 32});
    auto r = sys.runProgram("nest");
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(Integration, KillingBlockedCloakedProcessCleansUp)
{
    System sys(config(true));
    sys.addProgram("boss", os::Program{[](Env& env) {
        int rfd = -1, wfd = -1;
        env.pipe(rfd, wfd);
        Pid child = env.fork([rfd](Env& c) {
            GuestVA buf = c.allocPages(1);
            c.store64(buf, 0x5ec3e7);
            c.read(static_cast<std::uint64_t>(rfd), buf, 8); // blocks
            return 0;
        });
        env.yield(); // let the child block
        env.kill(child, os::sigKill);
        int status = -1;
        if (env.waitpid(child, &status) != child)
            return 1;
        return status == -1 ? 0 : 2;
    }, true, 32});
    auto r = sys.runProgram("boss");
    EXPECT_EQ(r.status, 0) << r.killReason;
    // The child's domain was torn down despite the violent death.
    EXPECT_EQ(sys.cloak()->stats().value("domains_created"),
              sys.cloak()->stats().value("domains_destroyed"));
}

TEST(Integration, SegfaultingCloakedProcessReported)
{
    System sys(config(true));
    sys.addProgram("crash", os::Program{[](Env& env) {
        env.load64(0x10); // far below any mapping
        return 0;
    }, true, 32});
    auto r = sys.runProgram("crash");
    EXPECT_TRUE(r.killed);
    EXPECT_NE(r.killReason.find("segfault"), std::string::npos);
    EXPECT_EQ(sys.cloak()->stats().value("domains_destroyed"), 1u);
}

TEST(Integration, MixedCloakedAndNativeProcessesCoexist)
{
    // A native process and a cloaked process share the machine; the
    // native one cannot read the cloaked one's pages even if it maps
    // the same file the cloaked one protects.
    System sys(config(true));
    workloads::registerAll(sys);
    sys.addProgram("plain-helper", os::Program{[](Env& env) {
        GuestVA p = env.allocPages(2);
        env.store64(p, 123);
        return static_cast<int>(env.load64(p));
    }, false, 32});
    sys.addProgram("coordinator", os::Program{[](Env& env) {
        env.mkdir("/cloaked");
        std::int64_t f = env.open("/cloaked/shared",
                                  os::openCreate | os::openRead |
                                      os::openWrite);
        env.writeAll(f, "for my eyes only");
        Pid helper = env.spawn("plain-helper");
        int hs = -1;
        env.waitpid(helper, &hs);
        if (hs != 123)
            return 1;
        env.lseek(f, 0, os::seekSet);
        std::string back = env.readSome(f, 32);
        env.close(f);
        return back == "for my eyes only" ? 0 : 2;
    }, true, 32});
    auto r = sys.runProgram("coordinator");
    EXPECT_EQ(r.status, 0) << r.killReason;

    // Host-side check: nothing in guest "disk" or frames holds the
    // plaintext once the process is gone.
    std::string disk = workloads::readGuestFile(sys, "/cloaked/shared");
    EXPECT_EQ(disk.find("my eyes"), std::string::npos);
}

TEST(Integration, ExitStatusesRecordedPerPid)
{
    System sys(config(false));
    sys.addProgram("coded", os::Program{[](Env& env) {
        return static_cast<int>(
            std::strtol(env.args().at(0).c_str(), nullptr, 10));
    }, false, 16});
    Pid a = sys.launch("coded", {"11"});
    Pid b = sys.launch("coded", {"22"});
    sys.run();
    ASSERT_NE(sys.resultOf(a), nullptr);
    ASSERT_NE(sys.resultOf(b), nullptr);
    EXPECT_EQ(sys.resultOf(a)->status, 11);
    EXPECT_EQ(sys.resultOf(b)->status, 22);
    EXPECT_EQ(sys.resultOf(a)->programName, "coded");
}

TEST(Integration, CloakedRunsCostMoreButBothDeterministic)
{
    auto cycles = [](bool cloaked) {
        System sys(config(cloaked));
        workloads::registerAll(sys);
        auto r = sys.runProgram("wl.stencil", {"32", "4"});
        EXPECT_EQ(r.status, 0);
        return sys.cycles();
    };
    Cycles native1 = cycles(false);
    Cycles native2 = cycles(false);
    Cycles cloaked1 = cycles(true);
    Cycles cloaked2 = cycles(true);
    EXPECT_EQ(native1, native2);
    EXPECT_EQ(cloaked1, cloaked2);
    EXPECT_GT(cloaked1, native1);
}

} // namespace
} // namespace osh
