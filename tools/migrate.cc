/**
 * @file
 * Migration driver: checkpoint/restore and live-migration smoke.
 *
 * Runs a cloaked victim to a freeze point on a source machine, moves
 * it to a freshly built target machine (cold checkpoint/restore or
 * live pre-copy), finishes it there, and compares the final exit
 * status and result checksum against an unmigrated reference run of
 * the same seed. CI runs this (plain and ASan) as the migration
 * round-trip smoke.
 *
 * Usage:
 *   migrate [--workload=wl.victim.compute] [--seed=42] [--mode=cold|live]
 *           [--entries=24] [--quiet]
 *
 * Exit codes:
 *   0  migrated run matches the reference run
 *   1  migration refused or results diverged
 *   3  bad arguments
 *   4  the victim finished before the freeze landed (tune --entries)
 */

#include "migrate/checkpoint.hh"
#include "migrate/live.hh"
#include "workloads/workloads.hh"

#include <iostream>
#include <string>

namespace
{

struct RunOutput
{
    int status = 0;
    bool killed = false;
    std::string checksum;
};

osh::system::SystemConfig
victimConfig(const std::string& workload, std::uint64_t seed)
{
    // Mirror the attack campaign's sizing: the paging victim must
    // thrash, so it gets fewer frames than its arena.
    bool paging = workload == "wl.victim.paging";
    return osh::system::SystemConfig::Builder{}
        .seed(seed)
        .guestFrames(paging ? 96 : 512)
        .cloaking(true)
        .build();
}

std::string
resultName(const std::string& workload)
{
    return workload; // victims write /results/<program name>
}

RunOutput
referenceRun(const std::string& workload, std::uint64_t seed)
{
    osh::system::System sys(victimConfig(workload, seed));
    osh::workloads::registerAll(sys);
    osh::system::ExitResult r = sys.runProgram(workload);
    return {r.status, r.killed,
            osh::workloads::resultOf(sys, resultName(workload))};
}

/** Park the victim at a trap boundary; false if it finished first. */
bool
freezeVictim(osh::system::System& sys, osh::Pid pid,
             std::uint64_t entries)
{
    sys.kernel().requestFreeze(pid, entries);
    sys.run();
    return sys.kernel().isFrozen(pid);
}

/** Abandon the source copy of a migrated-away victim. */
void
abandonSource(osh::system::System& sys, osh::Pid pid)
{
    osh::os::Process* proc = sys.kernel().findProcess(pid);
    if (proc == nullptr)
        return;
    proc->killRequested = true;
    proc->killReason = "migrated away";
    sys.kernel().thaw(pid);
    sys.run();
}

/** Failed migration: let the victim finish on the source so the
 *  scheduler winds down cleanly. */
void
drainSource(osh::system::System& sys, osh::Pid pid)
{
    if (sys.kernel().isFrozen(pid))
        sys.kernel().thaw(pid);
    sys.run();
}

} // namespace

int
main(int argc, char** argv)
{
    std::string workload = "wl.victim.compute";
    std::uint64_t seed = 42;
    std::uint64_t entries = 24;
    std::string mode = "cold";
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg](const std::string& prefix) {
            return arg.substr(prefix.size());
        };
        try {
            if (arg.rfind("--workload=", 0) == 0)
                workload = value("--workload=");
            else if (arg.rfind("--seed=", 0) == 0)
                seed = std::stoull(value("--seed="));
            else if (arg.rfind("--entries=", 0) == 0)
                entries = std::stoull(value("--entries="));
            else if (arg.rfind("--mode=", 0) == 0)
                mode = value("--mode=");
            else if (arg == "--quiet")
                quiet = true;
            else
                throw std::invalid_argument(arg);
        } catch (const std::exception&) {
            std::cerr << "migrate: bad argument: " << arg << "\n"
                      << "usage: migrate [--workload=NAME] [--seed=N] "
                         "[--mode=cold|live] [--entries=N] [--quiet]\n";
            return 3;
        }
    }
    if (mode != "cold" && mode != "live") {
        std::cerr << "migrate: bad mode '" << mode << "'\n";
        return 3;
    }

    RunOutput ref = referenceRun(workload, seed);

    osh::system::System src(victimConfig(workload, seed));
    osh::workloads::registerAll(src);
    osh::system::System dst(victimConfig(workload, seed));
    osh::workloads::registerAll(dst);

    osh::Pid target_pid = 0;
    if (mode == "cold") {
        osh::Pid pid = src.launch(workload);
        if (!freezeVictim(src, pid, entries)) {
            std::cerr << "migrate: victim finished before the freeze "
                         "landed; lower --entries\n";
            return 4;
        }
        osh::migrate::CheckpointOptions copts;
        copts.nonce = seed ^ 0x6d19;
        auto ckpt = osh::migrate::checkpoint(src, pid, copts);
        if (!ckpt.ok()) {
            std::cerr << "migrate: checkpoint refused: "
                      << osh::migrate::migrateErrorName(ckpt.error())
                      << "\n";
            drainSource(src, pid);
            return 1;
        }
        auto restored =
            osh::migrate::restore(dst, ckpt.value().image,
                                  ckpt.value().ticket);
        if (!restored.ok()) {
            std::cerr << "migrate: restore refused: "
                      << osh::migrate::migrateErrorName(restored.error())
                      << "\n";
            drainSource(src, pid);
            return 1;
        }
        target_pid = restored.value().pid;
        abandonSource(src, pid);
        if (!quiet) {
            std::cout << "checkpoint: " << ckpt.value().image.size()
                      << " bytes, " << ckpt.value().pagesCaptured
                      << " pages (" << ckpt.value().pagesSealed
                      << " sealed)\n";
        }
    } else {
        osh::Pid pid = src.launch(workload);
        osh::migrate::LiveOptions lopts;
        lopts.nonce = seed ^ 0x11fe;
        lopts.entriesPerRound = entries;
        auto live = osh::migrate::migrateLive(src, pid, dst, lopts);
        if (!live.ok()) {
            std::cerr << "migrate: live migration failed: "
                      << osh::migrate::migrateErrorName(live.error())
                      << "\n";
            drainSource(src, pid);
            return osh::migrate::MigrateError::UnsupportedState ==
                           live.error()
                       ? 4
                       : 1;
        }
        target_pid = live.value().targetPid;
        if (!quiet) {
            std::cout << "live: rounds=" << live.value().rounds
                      << " precopy=" << live.value().precopyPages
                      << " stopcopy=" << live.value().stopCopyPages
                      << " bytes=" << live.value().bytesStreamed
                      << " downtime=" << live.value().downtimeCycles
                      << " cycles\n";
        }
    }

    dst.run();
    const osh::system::ExitResult* r = dst.resultOf(target_pid);
    if (r == nullptr) {
        std::cerr << "migrate: restored victim produced no result\n";
        return 1;
    }
    std::string checksum =
        osh::workloads::resultOf(dst, resultName(workload));

    if (r->status != ref.status || r->killed != ref.killed ||
        checksum != ref.checksum) {
        std::cerr << "migrate: divergence from reference run\n"
                  << "  reference: status=" << ref.status
                  << " killed=" << ref.killed << " checksum="
                  << ref.checksum << "\n"
                  << "  migrated:  status=" << r->status
                  << " killed=" << r->killed << " checksum=" << checksum
                  << (r->killed ? " (" + r->killReason + ")" : "")
                  << "\n";
        return 1;
    }
    if (!quiet) {
        std::cout << "ok: " << workload << " seed=" << seed << " mode="
                  << mode << " status=" << r->status << " checksum="
                  << checksum << "\n";
    }
    return 0;
}
