/**
 * @file
 * Attack-campaign driver.
 *
 * Runs a seeded hostile-kernel campaign (AttackPoint × victim
 * workload × seed) and prints the deterministic verdict table plus the
 * aggregate metrics report. CI runs this with fixed seeds and diffs
 * the table against a committed expectation.
 *
 * Usage:
 *   attack_campaign [--seeds=1,2,3] [--points=a,b] [--workloads=x,y]
 *                   [--vcpus=N] [--async-depth=N]
 *                   [--timing-hardening=0|1] [--out=FILE]
 *                   [--expect=FILE] [--quiet]
 *
 * Exit codes:
 *   0  campaign clean (no LEAK, no CRASH, expectation matched if given)
 *   1  at least one LEAK or CRASH cell
 *   2  verdict table differs from --expect file
 *   3  bad arguments
 */

#include "attack/campaign.hh"
#include "trace/export.hh"

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

using osh::attack::AttackPoint;

std::vector<std::string>
splitCommas(const std::string& s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

bool
parsePoint(const std::string& name, AttackPoint& out)
{
    for (AttackPoint p : osh::attack::allAttackPoints()) {
        if (name == osh::attack::attackPointName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

int
usage(const std::string& bad)
{
    std::cerr << "attack_campaign: bad argument: " << bad << "\n"
              << "usage: attack_campaign [--seeds=1,2,3] "
                 "[--points=a,b] [--workloads=x,y] [--vcpus=N] "
                 "[--async-depth=N] [--timing-hardening=0|1] "
                 "[--out=FILE] [--expect=FILE] [--quiet]\n"
              << "points:";
    for (AttackPoint p : osh::attack::allAttackPoints())
        std::cerr << " " << osh::attack::attackPointName(p);
    std::cerr << "\n";
    return 3;
}

} // namespace

int
main(int argc, char** argv)
{
    osh::attack::CampaignConfig config;
    std::string out_path;
    std::string expect_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg](const std::string& prefix) {
            return arg.substr(prefix.size());
        };
        if (arg.rfind("--seeds=", 0) == 0) {
            config.seeds.clear();
            for (const std::string& s : splitCommas(value("--seeds="))) {
                try {
                    config.seeds.push_back(std::stoull(s));
                } catch (const std::exception&) {
                    return usage(arg);
                }
            }
        } else if (arg.rfind("--points=", 0) == 0) {
            for (const std::string& s :
                 splitCommas(value("--points="))) {
                AttackPoint p;
                if (!parsePoint(s, p))
                    return usage(arg);
                config.points.push_back(p);
            }
        } else if (arg.rfind("--workloads=", 0) == 0) {
            config.workloads = splitCommas(value("--workloads="));
        } else if (arg.rfind("--vcpus=", 0) == 0) {
            // Verdicts are vCPU-count invariant; this exercises the
            // SMP world-switch paths against the same expectations.
            try {
                config.vcpus = std::stoull(value("--vcpus="));
            } catch (const std::exception&) {
                return usage(arg);
            }
        } else if (arg.rfind("--async-depth=", 0) == 0) {
            // Verdicts are depth-invariant (the pipeline defers only
            // cycle charges); this exercises the async eviction and
            // drain-barrier paths against the same expectations.
            try {
                config.asyncDepth =
                    std::stoull(value("--async-depth="));
            } catch (const std::exception&) {
                return usage(arg);
            }
        } else if (arg.rfind("--timing-hardening=", 0) == 0) {
            // 1 (default): virtualized clock + constant-cost cloak on
            // every timing cell — the hardened table CI replays.
            // 0: demonstrate the timing LEAK cells the knobs close.
            std::string v = value("--timing-hardening=");
            if (v == "0") {
                config.timingHardening = false;
            } else if (v == "1") {
                config.timingHardening = true;
            } else {
                return usage(arg);
            }
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = value("--out=");
        } else if (arg.rfind("--expect=", 0) == 0) {
            expect_path = value("--expect=");
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage(arg);
        }
    }

    osh::attack::CampaignReport report;
    try {
        report = osh::attack::runCampaign(config);
    } catch (const std::invalid_argument& e) {
        std::cerr << "attack_campaign: " << e.what() << "\n";
        return 3;
    }

    std::string table = report.table();
    if (!quiet) {
        std::cout << table << "\n"
                  << osh::trace::metricsReport(report.metrics,
                                               "attack campaign");
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        out << table;
        if (!out) {
            std::cerr << "attack_campaign: cannot write " << out_path
                      << "\n";
            return 3;
        }
    }

    if (!expect_path.empty()) {
        std::ifstream in(expect_path);
        if (!in) {
            std::cerr << "attack_campaign: cannot read " << expect_path
                      << "\n";
            return 3;
        }
        std::stringstream expect;
        expect << in.rdbuf();
        if (expect.str() != table) {
            std::cerr << "attack_campaign: verdict table differs from "
                      << expect_path << "\n--- expected ---\n"
                      << expect.str() << "--- actual ---\n"
                      << table;
            return 2;
        }
    }

    if (!report.clean()) {
        std::cerr << "attack_campaign: LEAK/CRASH cells present\n";
        for (const auto& c : report.cells) {
            if (c.verdict == osh::attack::Verdict::Leak ||
                c.verdict == osh::attack::Verdict::Crash) {
                std::cerr << "  seed=" << c.seed << " point="
                          << osh::attack::attackPointName(c.point)
                          << " workload=" << c.workload << " -> "
                          << osh::attack::verdictName(c.verdict)
                          << " (" << c.detail << ")\n";
            }
        }
        return 1;
    }
    return 0;
}
